"""Sharded farm-of-farms: multi-process tenant sharding with a bridge.

:class:`~repro.core.farm.BuddyFarm` lifted SIMBA's one-MAB-per-user design
to thousands of tenants in a single kernel, and the timing-wheel scheduler
made per-kernel work cheap — but one Python process still tops out at one
core.  This module breaks that ceiling the way *Reliable Messaging to
Millions of Users with MigratoryData* (PAPERS.md) does: partition users
across long-lived cooperating shard processes, each a full ``BuddyFarm`` +
kernel of its own, and bridge the traffic that crosses shards.

Four pieces compose:

- :class:`ConsistentHashRing` — deterministic tenant placement.  Every
  shard owns ``vnodes`` points on a 64-bit ring hashed with BLAKE2b (never
  Python's salted ``hash``), so placement is identical in every process and
  every run.  Adding shards moves only the keys that land on the new
  shard's points (monotone remapping), and an ``overrides`` map lets a
  rebalancer reassign individual vnodes without disturbing the rest.
- :class:`ShardWorker` — one shard's half of the command/response pipe
  protocol: a long-lived ``SimbaWorld`` + ``BuddyFarm`` whose kernel is
  advanced epoch by epoch on command, materializing tenants lazily when
  their first traffic arrives.  Workers are plain objects, so tests drive
  them inline; production wraps them in worker processes.
- :class:`ShardedFarm` — the coordinator.  It spawns the workers, drives
  the **deterministic per-epoch drain**: every epoch it advances all shards
  in parallel to the epoch boundary, gathers each shard's outbound
  :class:`BridgeEnvelope` batch, sorts the union into one global order, and
  re-injects each envelope into its recipient's shard for the next epoch.
- :class:`HotShardDetector` — turns the per-shard/per-vnode load counters
  the rollup carries into placement recommendations (vnode overrides) when
  one shard runs hot.

Why the result is bit-identical for any shard count (including 1):

1. **Placement and workload are keyed by tenant name**, never by creation
   order or local index: the ring hashes names, per-tenant randomness comes
   from name-keyed RNG streams (identical in every shard world built from
   the same seed), and alert ids are explicit, not global-counter-derived.
2. **Cross-shard sends are virtual-time-stamped and epoch-quantized**: an
   envelope sent at virtual time *t* is delivered at exactly
   ``t + bridge_latency`` with ``bridge_latency >= epoch``, so its delivery
   time is a pure function of *t* — independent of which shard the
   recipient lives on — and it always lands in a *later* epoch than the one
   that produced it (the conservative-lookahead rule of parallel
   discrete-event simulation).
3. **Injection order is globally sorted**: the coordinator orders every
   epoch's envelopes by ``(deliver_at, origin, seq)`` before partitioning,
   so two envelopes reaching the same shard arrive in the same relative
   order whether that shard hosts 1/N of the users or all of them.
4. **Shared channel substrates must not leak interleaving**: within one
   shard world the IM/email/SMS services are shared by all local tenants,
   so sharded runs use zero-variance latency models (``sigma=0`` draws no
   randomness) and zero loss — per-tenant behaviour then depends only on
   that tenant's own traffic and name-keyed streams.

Under those rules each tenant's journal is a pure function of the seed and
the tenant's name, so the merged journal fingerprint is identical for any
partition of the tenant set.  ``tests/test_sharded_farm.py`` pins exactly
that, and the E13 experiment re-checks it on every run.
"""

from __future__ import annotations

import hashlib
import importlib
import traceback
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import TYPE_CHECKING, Callable, NamedTuple, Optional, Sequence

from repro.core.stabilizing import BridgeGuard, payload_checksum
from repro.errors import ConfigurationError
from repro.net.adversary import AdversaryModel, AdversaryStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.farm import BuddyFarm, FarmProfile, FarmTenant
    from repro.world import SimbaWorld, WorldConfig


def stable_hash64(text: str) -> int:
    """64-bit BLAKE2b of ``text`` — stable across processes and runs.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), so it
    can never be used for placement: two shard processes would disagree
    about who owns a tenant.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------


class ConsistentHashRing:
    """Deterministic consistent hashing of tenant names onto shards.

    Each shard contributes ``vnodes`` points (hashes of
    ``"{salt}ring-{shard}-{vnode}"``); a name belongs to the shard owning
    the first point clockwise of the name's hash.  Properties the tests
    pin:

    - **deterministic**: placement depends only on (name, shards, vnodes,
      salt, overrides) — identical in every process.
    - **balanced**: with enough vnodes, shard populations are within a
      modest factor of uniform.
    - **monotone**: :meth:`with_shards` to a larger count moves a key only
      if a *new* shard's point became its successor — ~1/N of keys move,
      all of them to the new shards.
    - **rebalanceable**: ``overrides`` reassigns single vnodes (the unit
      the :class:`HotShardDetector` recommends moving) without touching
      any other key.
    """

    def __init__(
        self,
        shards: int,
        vnodes: int = 64,
        salt: str = "",
        overrides: Optional[dict[tuple[int, int], int]] = None,
    ):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.shards = shards
        self.vnodes = vnodes
        self.salt = salt
        self.overrides = dict(overrides or {})
        for (shard, vnode), target in self.overrides.items():
            if not (0 <= shard < shards and 0 <= vnode < vnodes):
                raise ConfigurationError(
                    f"override source ({shard}, {vnode}) outside ring"
                )
            if not 0 <= target < shards:
                raise ConfigurationError(
                    f"override target {target} outside ring"
                )
        points = []
        for shard in range(shards):
            for vnode in range(vnodes):
                point = stable_hash64(f"{salt}ring-{shard}-{vnode}")
                points.append((point, shard, vnode))
        points.sort()
        self._points = points
        self._keys = [point for point, _, _ in points]

    def vnode_for(self, name: str) -> tuple[int, int]:
        """The ring point ``(home_shard, vnode)`` owning ``name``.

        The *home* identity of the point — overrides change :meth:`owner`,
        not which point a name maps to, so load attribution survives
        rebalancing.
        """
        key = stable_hash64(name)
        index = bisect_left(self._keys, key)
        if index == len(self._keys):
            index = 0
        _, shard, vnode = self._points[index]
        return shard, vnode

    def owner(self, name: str) -> int:
        """The shard serving ``name`` (override-aware)."""
        home, vnode = self.vnode_for(name)
        return self.overrides.get((home, vnode), home)

    def with_shards(self, shards: int) -> "ConsistentHashRing":
        """The same ring rebuilt for a different shard count (no overrides
        — a resize is a fresh placement epoch)."""
        return ConsistentHashRing(shards, vnodes=self.vnodes, salt=self.salt)

    def with_overrides(
        self, overrides: dict[tuple[int, int], int]
    ) -> "ConsistentHashRing":
        """A copy with ``overrides`` merged over the existing map."""
        merged = dict(self.overrides)
        merged.update(overrides)
        return ConsistentHashRing(
            self.shards, vnodes=self.vnodes, salt=self.salt, overrides=merged
        )

    def population_of(self, names: Sequence[str], shard: int) -> list[str]:
        """The subset of ``names`` owned by ``shard``, in given order."""
        return [name for name in names if self.owner(name) == shard]

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(shards={self.shards}, vnodes={self.vnodes},"
            f" overrides={len(self.overrides)})"
        )


# ----------------------------------------------------------------------
# Bridge envelopes
# ----------------------------------------------------------------------


class BridgeEnvelope(NamedTuple):
    """One cross-shard alert hop, stamped with virtual time.

    Field order doubles as the deterministic global sort key: the
    coordinator orders every epoch's union by ``(deliver_at, origin,
    seq)``, so injection order — and therefore same-instant kernel
    scheduling order — is identical for every shard layout.
    """

    deliver_at: float
    origin: str
    seq: int
    recipient: str
    category: str
    subject: str
    body: str
    alert_id: str
    #: CRC32 over the content fields (everything but ``deliver_at`` and
    #: the checksum itself), stamped at queue time so the receiving shard
    #: can detect in-flight corruption.  Trailing with a default so the
    #: sort key — and positional 8-field construction — are unchanged;
    #: ``(deliver_at, origin, seq)`` is unique for legitimate traffic, so
    #: the extra field never decides an ordering.  0 means "unchecked"
    #: (hand-built envelopes predating the checksum).
    checksum: int = 0


def envelope_checksum(envelope: BridgeEnvelope) -> int:
    """The integrity tag for one envelope: CRC32 of its content fields.

    ``deliver_at`` is routing metadata, not content — a delayed duplicate
    copy must still verify clean — and the checksum field itself is
    excluded by construction.
    """
    return payload_checksum(tuple(envelope[1:8]))


def envelope_checksum_ok(envelope: BridgeEnvelope) -> bool:
    """Whether the envelope verifies (0 = legacy unchecked, passes)."""
    return envelope.checksum == 0 or (
        envelope.checksum == envelope_checksum(envelope)
    )


def bridge_adversary_copies(
    envelope: BridgeEnvelope,
    model: Optional[AdversaryModel],
    seed: int,
    epoch: float,
    stats: Optional[AdversaryStats] = None,
) -> list[BridgeEnvelope]:
    """Deterministic adversarial copies of one bridge envelope.

    Every decision is a pure function of ``(seed, origin, seq)`` via
    :func:`stable_hash64` — never of coordinator iteration order or an RNG
    stream — so the same logical traffic suffers the identical fault set
    under every shard layout, keeping the layout-invariance pin meaningful
    even with the adversary on.

    Only the *copies* are ever corrupted or delayed (the primary always
    arrives intact): the bridge has no resend path, so corrupting primaries
    would turn a transport experiment into alert loss.  A delayed copy
    slips one epoch (``reorder``), a corrupted copy has its body mangled
    while the checksum stays stale — exactly what the receive-side
    :class:`~repro.core.stabilizing.BridgeGuard` exists to catch.
    """
    if model is None or not model.enabled:
        return []
    token = stable_hash64(
        f"bridge-adversary-{seed}-{envelope.origin}-{envelope.seq}"
    )
    if (token & 0xFFFF) / 65536.0 >= model.duplicate_probability:
        return []
    extras = 1 + (token >> 16) % max(1, model.duplicate_max - 1)
    copies = []
    for index in range(extras):
        sub = stable_hash64(
            f"bridge-adversary-copy-{seed}-{envelope.origin}"
            f"-{envelope.seq}-{index}"
        )
        copy = envelope
        if (sub & 0xFFFF) / 65536.0 < model.reorder_probability:
            copy = copy._replace(deliver_at=copy.deliver_at + epoch)
            if stats is not None:
                stats.reordered += 1
        if ((sub >> 16) & 0xFFFF) / 65536.0 < model.corrupt_probability:
            copy = copy._replace(body=copy.body + "\x00bitflip")
            if stats is not None:
                stats.corrupt_injected += 1
        copies.append(copy)
        if stats is not None:
            stats.duplicates_injected += 1
    return copies


# ----------------------------------------------------------------------
# Load accounting and the hot-shard detector
# ----------------------------------------------------------------------


@dataclass
class ShardLoad:
    """One shard's load counters, shipped with every rollup."""

    shard: int
    tenants: int = 0
    receipts: int = 0
    journal_events: int = 0
    envelopes_out: int = 0
    envelopes_in: int = 0
    #: Journal events attributed to each *home* vnode ``(shard, vnode)`` —
    #: the granularity at which placement can actually be changed.
    vnode_events: dict[tuple[int, int], int] = field(default_factory=dict)


@dataclass(frozen=True)
class PlacementMove:
    """Reassign one vnode from a hot shard to a cooler one."""

    vnode: tuple[int, int]
    from_shard: int
    to_shard: int
    events: int

    def as_override(self) -> tuple[tuple[int, int], int]:
        return self.vnode, self.to_shard


@dataclass
class PlacementReport:
    """What the detector concluded about one rollup's load distribution."""

    mean_events: float
    per_shard_events: dict[int, int]
    hot_shards: list[int]
    moves: list[PlacementMove]

    @property
    def balanced(self) -> bool:
        return not self.hot_shards

    def overrides(self) -> dict[tuple[int, int], int]:
        """The recommended moves as a ring ``overrides`` map."""
        return dict(move.as_override() for move in self.moves)

    def summary(self) -> str:
        if self.balanced:
            return (
                f"placement balanced (mean {self.mean_events:.0f} "
                f"events/shard)"
            )
        moved = ", ".join(
            f"vnode {m.vnode} {m.from_shard}->{m.to_shard} ({m.events} ev)"
            for m in self.moves
        )
        return (
            f"hot shards {self.hot_shards} "
            f"(mean {self.mean_events:.0f} events/shard); recommend: {moved}"
        )


class HotShardDetector:
    """Turn per-shard/per-vnode load counters into rebalancing advice.

    A shard is *hot* when its journal-event count exceeds
    ``threshold × mean``.  For each hot shard the detector greedily moves
    its heaviest vnodes to the currently-coolest shard until the shard
    projects below the threshold (or it has only one vnode's worth of load
    left — a single oversized tenant cannot be split).  Deterministic:
    ties break on vnode id and shard index, never on dict order.
    """

    def __init__(self, threshold: float = 1.25):
        if threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be > 1.0, got {threshold}"
            )
        self.threshold = threshold

    def analyze(self, loads: Sequence[ShardLoad]) -> PlacementReport:
        per_shard = {load.shard: load.journal_events for load in loads}
        if not per_shard:
            return PlacementReport(0.0, {}, [], [])
        mean = sum(per_shard.values()) / len(per_shard)
        limit = self.threshold * mean
        hot = sorted(
            shard for shard, events in per_shard.items() if events > limit
        )
        projected = dict(per_shard)
        moves: list[PlacementMove] = []
        for shard in hot:
            load = next(l for l in loads if l.shard == shard)
            # Heaviest vnodes first; vnode id breaks ties deterministically.
            candidates = sorted(
                load.vnode_events.items(), key=lambda kv: (-kv[1], kv[0])
            )
            for vnode, events in candidates:
                if projected[shard] <= limit or events == 0:
                    break
                if len(load.vnode_events) <= 1:
                    break  # nothing left to split off
                coolest = min(
                    projected, key=lambda s: (projected[s], s)
                )
                if coolest == shard:
                    break
                # Moving must help: never push the target past the source.
                if projected[coolest] + events >= projected[shard]:
                    continue
                moves.append(
                    PlacementMove(
                        vnode=vnode,
                        from_shard=shard,
                        to_shard=coolest,
                        events=events,
                    )
                )
                projected[shard] -= events
                projected[coolest] += events
        return PlacementReport(
            mean_events=mean,
            per_shard_events=per_shard,
            hot_shards=hot,
            moves=moves,
        )


# ----------------------------------------------------------------------
# Shard worker: one long-lived farm kernel behind a command loop
# ----------------------------------------------------------------------


@dataclass
class ShardSpec:
    """Everything a worker needs to build its shard (must pickle).

    ``workload`` names a builder as ``"module.path:attribute"``; the worker
    imports it and calls ``builder(runtime, **workload_kwargs)`` once at
    construction time.  The builder installs emitter processes on the
    shard's kernel and uses :meth:`ShardRuntime.send_envelope` for
    cross-shard fan-out.  A dotted name (not a callable) keeps the spec
    picklable under every multiprocessing start method.
    """

    shard: int
    shards: int
    seed: int
    population: int
    workload: str
    workload_kwargs: dict = field(default_factory=dict)
    prefix: str = "user"
    vnodes: int = 64
    epoch: float = 60.0
    bridge_latency: float = 60.0
    ring_overrides: dict = field(default_factory=dict)
    world_config: Optional["WorldConfig"] = None
    profile: Optional["FarmProfile"] = None
    #: Receive-side bridge transport: True verifies envelope checksums and
    #: drops duplicate ``(origin, seq)`` arrivals before delivery; False is
    #: the naive baseline that admits everything (and counts the damage).
    bridge_stabilizing: bool = True

    def __post_init__(self):
        if not 0 <= self.shard < self.shards:
            raise ConfigurationError(
                f"shard {self.shard} outside [0, {self.shards})"
            )
        if self.epoch <= 0:
            raise ConfigurationError(f"epoch must be > 0, got {self.epoch}")
        if self.bridge_latency < self.epoch:
            # The conservative-lookahead rule: a cross-shard message must
            # never be due inside the epoch that produced it, or the
            # recipient's kernel has already run past its delivery time.
            raise ConfigurationError(
                f"bridge_latency {self.bridge_latency} < epoch {self.epoch}"
            )


class ShardRuntime:
    """The surface a workload builder programs against."""

    def __init__(self, worker: "ShardWorker"):
        self._worker = worker

    @property
    def world(self) -> "SimbaWorld":
        return self._worker.world

    @property
    def farm(self) -> "BuddyFarm":
        return self._worker.farm

    @property
    def source(self):
        """The shard's ingest source — local emissions and bridge
        deliveries both enter through it, so ``Alert.source`` is identical
        whichever path an alert took."""
        return self._worker.source

    @property
    def shard(self) -> int:
        return self._worker.spec.shard

    @property
    def seed(self) -> int:
        return self._worker.spec.seed

    @property
    def population(self) -> int:
        return self._worker.spec.population

    @property
    def prefix(self) -> str:
        return self._worker.spec.prefix

    @property
    def local_names(self) -> list[str]:
        """This shard's slice of the logical population, in global order."""
        return self._worker.local_names

    def user_name(self, index: int) -> str:
        return f"{self._worker.spec.prefix}{index}"

    def tenant(self, name: str) -> "FarmTenant":
        """The tenant for ``name``, materialized on first use."""
        return self._worker.tenant(name)

    def send_envelope(
        self,
        recipient: str,
        category: str,
        subject: str,
        body: str,
        *,
        origin: str,
        seq: int,
        alert_id: str,
    ) -> BridgeEnvelope:
        """Queue one cross-shard alert hop for the next epoch drain.

        Delivery time is ``now + bridge_latency`` — a pure function of the
        send time, so it is identical whether the recipient turns out to
        be local or foreign (local recipients take the bridge too; a
        shortcut would make delivery timing depend on the layout).
        """
        return self._worker.queue_envelope(
            recipient, category, subject, body,
            origin=origin, seq=seq, alert_id=alert_id,
        )


def _resolve_workload(path: str) -> Callable:
    """Import ``"module:attr"`` (``:`` preferred; last ``.`` accepted)."""
    if ":" in path:
        module_name, attr = path.split(":", 1)
    else:
        module_name, _, attr = path.rpartition(".")
    if not module_name:
        raise ConfigurationError(f"workload path {path!r} has no module")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise ConfigurationError(
            f"workload {attr!r} not found in {module_name!r}"
        ) from exc


class ShardWorker:
    """One shard: a long-lived ``BuddyFarm`` kernel driven by commands.

    Plain object — production wraps it in a process via
    :func:`shard_worker_main`, tests drive it inline.  The kernel only
    advances inside :meth:`run_epoch`, so between commands the shard is a
    quiescent, inspectable world.
    """

    def __init__(self, spec: ShardSpec):
        from repro.core.farm import FarmProfile
        from repro.world import SimbaWorld, WorldConfig

        self.spec = spec
        self.ring = ConsistentHashRing(
            spec.shards,
            vnodes=spec.vnodes,
            overrides={
                tuple(key): value
                for key, value in spec.ring_overrides.items()
            },
        )
        self.world = SimbaWorld(
            spec.world_config
            if spec.world_config is not None
            else WorldConfig(seed=spec.seed)
        )
        profile = spec.profile if spec.profile is not None else FarmProfile()
        self.farm = self.world.create_farm(profile=profile)
        self.source = self.world.create_source("portal")
        self.local_names = [
            f"{spec.prefix}{index}"
            for index in range(spec.population)
            if self.ring.owner(f"{spec.prefix}{index}") == spec.shard
        ]
        self._outbound: list[BridgeEnvelope] = []
        self.bridge_guard = BridgeGuard(stabilizing=spec.bridge_stabilizing)
        self.load = ShardLoad(shard=spec.shard)
        self.runtime = ShardRuntime(self)
        builder = _resolve_workload(spec.workload)
        builder(self.runtime, **spec.workload_kwargs)

    # -- tenancy -------------------------------------------------------

    def tenant(self, name: str) -> "FarmTenant":
        """Materialize-on-demand: idle logical users cost nothing.

        Lazy creation is deterministic because a tenant's first-traffic
        time (local arrival or envelope ``deliver_at``) is itself a pure
        function of seed and name — every layout materializes the same
        tenant at the same virtual instant.
        """
        existing = self.farm.tenants.get(name)
        if existing is not None:
            return existing
        tenant = self.farm.add_user(name)
        tenant.deployment.launch()
        self.source.add_target(tenant.book)
        self.load.tenants += 1
        return tenant

    # -- bridge --------------------------------------------------------

    def queue_envelope(
        self,
        recipient: str,
        category: str,
        subject: str,
        body: str,
        *,
        origin: str,
        seq: int,
        alert_id: str,
    ) -> BridgeEnvelope:
        envelope = BridgeEnvelope(
            deliver_at=self.world.env.now + self.spec.bridge_latency,
            origin=origin,
            seq=seq,
            recipient=recipient,
            category=category,
            subject=subject,
            body=body,
            alert_id=alert_id,
        )
        envelope = envelope._replace(checksum=envelope_checksum(envelope))
        self._outbound.append(envelope)
        self.load.envelopes_out += 1
        return envelope

    def _deliver_envelope(self, envelope: BridgeEnvelope):
        env = self.world.env
        if envelope.deliver_at > env.now:
            yield env.timeout(envelope.deliver_at - env.now)
        tenant = self.tenant(envelope.recipient)
        self.source.emit_to(
            tenant.book,
            envelope.category,
            envelope.subject,
            envelope.body,
            alert_id=envelope.alert_id,
        )

    # -- commands ------------------------------------------------------

    def run_epoch(
        self, until: float, inbound: Sequence[tuple]
    ) -> list[BridgeEnvelope]:
        """Inject ``inbound`` (already globally sorted), run to ``until``,
        return this epoch's outbound envelopes."""
        env = self.world.env
        for raw in inbound:
            envelope = BridgeEnvelope(*raw)
            self.load.envelopes_in += 1
            if not self.bridge_guard.admit(
                envelope.origin, envelope.seq, envelope_checksum_ok(envelope)
            ):
                continue
            env.process(
                self._deliver_envelope(envelope),
                name=f"bridge-{envelope.alert_id}",
            )
        self.world.run(until=until)
        outbound = self._outbound
        self._outbound = []
        return outbound

    def rollup(self) -> dict:
        """This shard's contribution to the merged aggregate rollup."""
        farm = self.farm
        counts = farm.aggregate_counts()
        latencies = [
            receipt.latency for receipt in farm.iter_receipts(unique=True)
        ]
        self.load.receipts = len(latencies)
        journal_events = 0
        vnode_events: Counter = Counter()
        for tenant in farm:
            events = tenant.deployment.journal.total_events
            journal_events += events
            vnode_events[self.ring.vnode_for(tenant.name)] += events
        self.load.journal_events = journal_events
        self.load.vnode_events = dict(vnode_events)
        return {
            "shard": self.spec.shard,
            "tenants": len(farm),
            "counts": dict(counts),
            "latencies": latencies,
            "load": self.load,
            "bridge_guard": self.bridge_guard.audit.summary(),
        }

    def fingerprints(self) -> dict[str, str]:
        """Per-tenant journal digests (the unit of layout invariance)."""
        digests: dict[str, str] = {}
        for tenant in self.farm:
            hasher = hashlib.sha256()
            for event in tenant.deployment.journal.events:
                hasher.update(
                    f"{event.at!r}|{event.kind}|{event.detail}"
                    f"|{event.alert_id}\n".encode("utf-8")
                )
            digests[tenant.name] = hasher.hexdigest()
        return digests


def shard_worker_main(conn, spec: ShardSpec) -> None:
    """Child-process entry: serve the command/response protocol on ``conn``.

    Every reply is ``("ok", payload)`` or ``("error", message)``; a failed
    command leaves the loop running so the coordinator can still stop the
    worker cleanly.  Module-level so it pickles under the ``spawn`` start
    method.
    """
    try:
        try:
            worker = ShardWorker(spec)
        except Exception:
            conn.send(("error", traceback.format_exc()))
            return
        conn.send(("ready", len(worker.local_names)))
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            command = message[0]
            try:
                if command == "epoch":
                    _, until, inbound = message
                    outbound = worker.run_epoch(until, inbound)
                    conn.send(("ok", [tuple(e) for e in outbound]))
                elif command == "rollup":
                    conn.send(("ok", worker.rollup()))
                elif command == "fingerprints":
                    conn.send(("ok", worker.fingerprints()))
                elif command == "stop":
                    conn.send(("ok", None))
                    return
                else:
                    conn.send(("error", f"unknown command {command!r}"))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


class ShardProtocolError(RuntimeError):
    """A worker replied with an error (its traceback is the message)."""


class _ProcessShard:
    """Coordinator-side handle for one worker process."""

    def __init__(self, context, spec: ShardSpec):
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=shard_worker_main,
            args=(child_conn, spec),
            name=f"shard-{spec.shard}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def send(self, message: tuple) -> None:
        self.conn.send(message)

    def recv(self) -> object:
        kind, payload = self.conn.recv()
        if kind == "error":
            raise ShardProtocolError(payload)
        return payload

    def stop(self, timeout: float = 5.0) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        finally:
            self.conn.close()
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=timeout)


class _InlineShard:
    """In-process stand-in for tests and debugging: same protocol, no
    processes, no pickling of commands (results still round-trip the same
    tuple shapes the pipe protocol uses)."""

    def __init__(self, spec: ShardSpec):
        self._worker = ShardWorker(spec)
        self._pending: list[object] = [("ready", len(self._worker.local_names))]

    def send(self, message: tuple) -> None:
        command = message[0]
        try:
            if command == "epoch":
                _, until, inbound = message
                outbound = self._worker.run_epoch(until, inbound)
                self._pending.append(("ok", [tuple(e) for e in outbound]))
            elif command == "rollup":
                self._pending.append(("ok", self._worker.rollup()))
            elif command == "fingerprints":
                self._pending.append(("ok", self._worker.fingerprints()))
            elif command == "stop":
                self._pending.append(("ok", None))
            else:
                self._pending.append(("error", f"unknown command {command!r}"))
        except Exception:
            self._pending.append(("error", traceback.format_exc()))

    def recv(self) -> object:
        kind, payload = self._pending.pop(0)
        if kind == "error":
            raise ShardProtocolError(payload)
        return payload

    def stop(self, timeout: float = 5.0) -> None:
        self._pending.clear()


@dataclass
class MergedRollup:
    """Deterministic aggregate of every shard's rollup.

    Merge rules keep the result layout-invariant: counters add (abelian),
    latencies merge as a *sorted* multiset, fingerprints combine over the
    name-sorted per-tenant digest list.
    """

    shards: int
    population: int
    tenants: int
    receipts: int
    counts: Counter
    latencies: list[float]
    loads: list[ShardLoad]
    undelivered_envelopes: int
    placement: PlacementReport
    #: Summed receive-side bridge-transport counters across all shards
    #: (corrupt_rejected / duplicate_dropped under the stabilizing guard;
    #: corrupt_accepted / duplicate_applied under the naive baseline).
    bridge_audit: dict = field(default_factory=dict)

    @property
    def delivered(self) -> int:
        return self.counts.get("routed", 0)


class ShardedFarm:
    """Farm-of-farms coordinator: N shard processes, one virtual clock.

    Usage::

        farm = ShardedFarm(
            shards=4, seed=0, population=100_000,
            workload="repro.experiments.sharded:build_e13_workload",
            workload_kwargs={"duration": 600.0},
        )
        with farm:
            farm.run(until=840.0)
            rollup = farm.merged_rollup()
            digest = farm.merged_fingerprint()

    The context manager owns worker lifecycle; :meth:`run` drives the
    epoch barrier loop.  All workers advance concurrently inside an epoch
    (the coordinator broadcasts first, then collects), so wall-clock
    scales with cores while virtual time stays globally consistent.
    """

    def __init__(
        self,
        shards: int,
        seed: int,
        population: int,
        workload: str,
        workload_kwargs: Optional[dict] = None,
        *,
        prefix: str = "user",
        vnodes: int = 64,
        epoch: float = 60.0,
        bridge_latency: Optional[float] = None,
        ring_overrides: Optional[dict[tuple[int, int], int]] = None,
        world_config: Optional["WorldConfig"] = None,
        profile: Optional["FarmProfile"] = None,
        detector: Optional[HotShardDetector] = None,
        inline: bool = False,
        bridge_adversary: Optional[AdversaryModel] = None,
        bridge_stabilizing: bool = True,
    ):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if population < 1:
            raise ConfigurationError(
                f"population must be >= 1, got {population}"
            )
        self.shards = shards
        self.seed = seed
        self.population = population
        self.epoch = float(epoch)
        self.bridge_latency = float(
            bridge_latency if bridge_latency is not None else epoch
        )
        self.ring = ConsistentHashRing(
            shards, vnodes=vnodes, overrides=ring_overrides
        )
        self.detector = detector if detector is not None else HotShardDetector()
        self.inline = inline
        self.bridge_adversary = bridge_adversary
        self.bridge_stabilizing = bridge_stabilizing
        self.bridge_adversary_stats = AdversaryStats()
        self._specs = [
            ShardSpec(
                shard=shard,
                shards=shards,
                seed=seed,
                population=population,
                workload=workload,
                workload_kwargs=dict(workload_kwargs or {}),
                prefix=prefix,
                vnodes=vnodes,
                epoch=self.epoch,
                bridge_latency=self.bridge_latency,
                ring_overrides=dict(ring_overrides or {}),
                world_config=world_config,
                profile=profile,
                bridge_stabilizing=bridge_stabilizing,
            )
            for shard in range(shards)
        ]
        self._workers: list = []
        self._inbound: list[list[tuple]] = [[] for _ in range(shards)]
        self._undelivered = 0
        self._now = 0.0
        self.local_counts: list[int] = []

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ShardedFarm":
        if self._workers:
            raise RuntimeError("sharded farm already started")
        if self.inline:
            self._workers = [_InlineShard(spec) for spec in self._specs]
        else:
            method = (
                "fork" if "fork" in get_all_start_methods() else "spawn"
            )
            context = get_context(method)
            self._workers = [
                _ProcessShard(context, spec) for spec in self._specs
            ]
        # Every worker builds concurrently; collect the ready handshakes.
        self.local_counts = [worker.recv() for worker in self._workers]
        return self

    def stop(self) -> None:
        workers, self._workers = self._workers, []
        for worker in workers:
            worker.stop()

    def __enter__(self) -> "ShardedFarm":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _require_started(self) -> None:
        if not self._workers:
            raise RuntimeError("sharded farm is not started")

    # -- the deterministic per-epoch drain ----------------------------

    def run_epoch(self) -> int:
        """Advance every shard one epoch; returns envelopes exchanged.

        Broadcast-then-collect: all shards run their kernels concurrently;
        the barrier is the collection loop.  The union of outbound
        envelopes is sorted into the one global order and partitioned for
        the next epoch — see the module docstring's determinism argument.
        """
        self._require_started()
        until = self._now + self.epoch
        for shard, worker in enumerate(self._workers):
            worker.send(("epoch", until, self._inbound[shard]))
        outbound: list[tuple] = []
        for worker in self._workers:
            outbound.extend(worker.recv())
        if self.bridge_adversary is not None and self.bridge_adversary.enabled:
            # Adversarial copies are injected *before* the global sort so
            # they take their deterministic place in the one injection
            # order; every decision is a pure function of envelope
            # identity, so the fault set is layout-invariant too.
            adversarial: list[tuple] = []
            for raw in outbound:
                for copy in bridge_adversary_copies(
                    BridgeEnvelope(*raw),
                    self.bridge_adversary,
                    self.seed,
                    self.epoch,
                    stats=self.bridge_adversary_stats,
                ):
                    adversarial.append(tuple(copy))
            outbound.extend(adversarial)
        outbound.sort()
        self._inbound = [[] for _ in range(self.shards)]
        for raw in outbound:
            envelope = BridgeEnvelope(*raw)
            self._inbound[self.ring.owner(envelope.recipient)].append(raw)
        self._now = until
        return len(outbound)

    def run(self, until: float) -> None:
        """Epoch-drain until the virtual clock reaches ``until``.

        The epoch count is ``ceil(until / epoch)`` — a pure function of
        the arguments, never of runtime state, so every shard layout runs
        the identical epoch sequence.
        """
        self._require_started()
        while self._now < until:
            self.run_epoch()
        self._undelivered += sum(len(batch) for batch in self._inbound)

    @property
    def now(self) -> float:
        return self._now

    # -- merged rollups ------------------------------------------------

    def merged_rollup(self) -> MergedRollup:
        self._require_started()
        for worker in self._workers:
            worker.send(("rollup",))
        rollups = [worker.recv() for worker in self._workers]
        counts: Counter = Counter()
        latencies: list[float] = []
        loads: list[ShardLoad] = []
        bridge_audit: Counter = Counter()
        tenants = 0
        for rollup in rollups:
            counts.update(rollup["counts"])
            latencies.extend(rollup["latencies"])
            loads.append(rollup["load"])
            bridge_audit.update(rollup.get("bridge_guard", {}))
            tenants += rollup["tenants"]
        latencies.sort()
        return MergedRollup(
            shards=self.shards,
            population=self.population,
            tenants=tenants,
            receipts=len(latencies),
            counts=counts,
            latencies=latencies,
            loads=loads,
            undelivered_envelopes=self._undelivered,
            placement=self.detector.analyze(loads),
            bridge_audit=dict(bridge_audit),
        )

    def tenant_fingerprints(self) -> dict[str, str]:
        self._require_started()
        for worker in self._workers:
            worker.send(("fingerprints",))
        merged: dict[str, str] = {}
        for worker in self._workers:
            digests = worker.recv()
            overlap = merged.keys() & digests.keys()
            if overlap:
                raise ShardProtocolError(
                    f"tenants on multiple shards: {sorted(overlap)[:5]}"
                )
            merged.update(digests)
        return merged

    def merged_fingerprint(
        self, fingerprints: Optional[dict[str, str]] = None
    ) -> str:
        """One digest over the name-sorted per-tenant digests — identical
        for every partition of the same tenant set."""
        if fingerprints is None:
            fingerprints = self.tenant_fingerprints()
        hasher = hashlib.sha256()
        for name in sorted(fingerprints):
            hasher.update(f"{name}:{fingerprints[name]}\n".encode("utf-8"))
        return hasher.hexdigest()
