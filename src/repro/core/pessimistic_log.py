"""Pessimistic logging for incoming IM alerts (§4.2.1).

"Upon receiving an IM, MyAlertBuddy instructs the SIMBA library to save a
copy to a log file before sending the acknowledgement.  After processing the
IM, MyAlertBuddy marks the saved copy as 'Processed'.  Every time
MyAlertBuddy is restarted, it first checks the log file for unprocessed IMs
before accepting new alerts."

The log is the *persistent* part of MAB: it survives process crashes and
restarts (and, with a ``path``, even simulated reboots via the JSONL file).
The write happens *before* the ack — that ordering is what guarantees
no-ack ⇒ sender falls back, ack ⇒ alert is durable.
"""

from __future__ import annotations

import itertools
import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

logger = logging.getLogger(__name__)

#: Synchronous append + flush on period hardware; the dominant extra cost in
#: the paper's 1.5 s logged-ack round trip over the <1 s one-way time.
DEFAULT_WRITE_LATENCY = 0.5


@dataclass
class LogEntry:
    """One logged incoming alert."""

    entry_id: int
    alert_id: str
    received_at: float
    payload: str
    processed: bool = False
    processed_at: Optional[float] = None


class LogShipperHook(Protocol):
    """What a replication shipper must provide to tap the log's records.

    ``on_append`` is a simulation generator: the append (and therefore the
    ack that follows it) waits for the ship to complete or be queued.
    ``on_mark`` is synchronous enqueue-only; the pipeline flushes marks
    before it records a terminal outcome (see
    :mod:`repro.core.replication`).
    """

    def on_append(self, record: dict): ...  # generator
    def on_mark(self, record: dict) -> None: ...


class PessimisticLog:
    """Write-ahead log of received-but-not-yet-processed alerts."""

    def __init__(
        self,
        env: "Environment",
        write_latency: float = DEFAULT_WRITE_LATENCY,
        path: Optional[Path] = None,
    ):
        if write_latency < 0:
            raise ValueError(f"write latency must be >= 0, got {write_latency!r}")
        self.env = env
        self.write_latency = write_latency
        self.path = Path(path) if path is not None else None
        self._entries: dict[int, LogEntry] = {}
        self._by_alert: dict[str, int] = {}
        self._ids = itertools.count(1)
        #: Warm-standby replication tap (a :class:`LogShipperHook`).  When
        #: set, every appended record ships before the append returns —
        #: preserving the log-before-ack ordering across the pair.
        self.shipper: Optional[LogShipperHook] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, alert_id: str, payload: str):
        """Durably record an incoming alert (generator: takes write time).

        Usage from a process: ``entry = yield from log.append(...)``.
        """
        if self.write_latency:
            yield self.env.timeout(self.write_latency)
        entry = LogEntry(
            entry_id=next(self._ids),
            alert_id=alert_id,
            received_at=self.env.now,
            payload=payload,
        )
        self._entries[entry.entry_id] = entry
        self._by_alert[alert_id] = entry.entry_id
        record = {
            "op": "append",
            "entry_id": entry.entry_id,
            "alert_id": alert_id,
            "received_at": entry.received_at,
            "payload": payload,
        }
        self._write_line(record)
        if self.shipper is not None:
            yield from self.shipper.on_append(record)
        return entry

    def mark_processed(self, entry_id: int) -> None:
        """Mark an entry 'Processed' after routing completed."""
        entry = self._entries[entry_id]
        if entry.processed:
            return
        entry.processed = True
        entry.processed_at = self.env.now
        record = {
            "op": "processed",
            "entry_id": entry_id,
            "processed_at": entry.processed_at,
        }
        self._write_line(record)
        if self.shipper is not None:
            self.shipper.on_mark(record)

    # ------------------------------------------------------------------
    # Reading / recovery
    # ------------------------------------------------------------------

    def unprocessed(self) -> list[LogEntry]:
        """Entries a restarted MAB must replay, oldest first."""
        return sorted(
            (e for e in self._entries.values() if not e.processed),
            key=lambda e: e.entry_id,
        )

    def entries(self) -> list[LogEntry]:
        """Every entry ever logged, oldest first (oracle/forensics view)."""
        return sorted(self._entries.values(), key=lambda e: e.entry_id)

    def has_seen(self, alert_id: str) -> bool:
        """Whether this alert id was ever logged (incoming-dedup probe)."""
        return alert_id in self._by_alert

    def entry_for_alert(self, alert_id: str) -> Optional[LogEntry]:
        entry_id = self._by_alert.get(alert_id)
        return self._entries.get(entry_id) if entry_id is not None else None

    def entry(self, entry_id: int) -> Optional[LogEntry]:
        return self._entries.get(entry_id)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Replication (standby mirror)
    # ------------------------------------------------------------------

    def apply_replica_record(self, record: dict) -> None:
        """Apply one shipped record to this (standby) log, instantly.

        The ship latency was already paid on the link; application is the
        local bookkeeping a real standby does on receipt.  Idempotent, so
        catch-up after a partition may safely overlap a snapshot re-seed.
        A 'processed' mark for an entry that never arrived (records raced
        a link flap) is skipped with a warning — recovery replay then errs
        toward re-delivery, never loss.
        """
        if record["op"] == "append":
            entry = LogEntry(
                entry_id=record["entry_id"],
                alert_id=record["alert_id"],
                received_at=record["received_at"],
                payload=record["payload"],
            )
            self._entries[entry.entry_id] = entry
            self._by_alert[entry.alert_id] = entry.entry_id
            self._write_line(record)
            # Local appends (after a promotion) must not collide with
            # anything mirrored.
            self._ids = itertools.count(max(self._entries) + 1)
        elif record["op"] == "processed":
            entry = self._entries.get(record["entry_id"])
            if entry is None:
                logger.warning(
                    "replica log: 'processed' mark for unknown entry %r",
                    record["entry_id"],
                )
                return
            if not entry.processed:
                entry.processed = True
                entry.processed_at = record.get("processed_at")
                self._write_line(record)

    def snapshot_records(self) -> list[dict]:
        """The record stream that rebuilds this log's current state —
        what reconciliation ships to re-seed a rejoining standby."""
        records: list[dict] = []
        for entry in self.entries():
            records.append({
                "op": "append",
                "entry_id": entry.entry_id,
                "alert_id": entry.alert_id,
                "received_at": entry.received_at,
                "payload": entry.payload,
            })
            if entry.processed:
                records.append({
                    "op": "processed",
                    "entry_id": entry.entry_id,
                    "processed_at": entry.processed_at,
                })
        return records

    # ------------------------------------------------------------------
    # File backing
    # ------------------------------------------------------------------

    def _write_line(self, record: dict) -> None:
        if self.path is None:
            return
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")

    @classmethod
    def load(
        cls,
        env: "Environment",
        path: Path,
        write_latency: float = DEFAULT_WRITE_LATENCY,
    ) -> "PessimisticLog":
        """Rebuild a log from its JSONL file (surviving a machine reboot)."""
        log = cls(env, write_latency=write_latency, path=path)
        if not Path(path).exists():
            return log
        max_id = 0
        lines = [
            stripped
            for stripped in (
                raw.strip()
                for raw in Path(path).read_text(encoding="utf-8").splitlines()
            )
            if stripped
        ]
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # A torn tail line is the expected signature of a crash
                    # mid-append: the entry was never durable, so the ack
                    # never went out and the sender's fallback covers it.
                    logger.warning(
                        "pessimistic log %s: skipping torn tail record %r",
                        path, line[:80],
                    )
                    continue
                raise  # corruption in the middle of the file is a real error
            if record["op"] == "append":
                entry = LogEntry(
                    entry_id=record["entry_id"],
                    alert_id=record["alert_id"],
                    received_at=record["received_at"],
                    payload=record["payload"],
                )
                log._entries[entry.entry_id] = entry
                log._by_alert[entry.alert_id] = entry.entry_id
                max_id = max(max_id, entry.entry_id)
            elif record["op"] == "processed":
                existing = log._entries.get(record["entry_id"])
                if existing is None:
                    logger.warning(
                        "pessimistic log %s: 'processed' record for entry %r "
                        "that was never appended",
                        path, record["entry_id"],
                    )
                    continue
                existing.processed = True
                existing.processed_at = record.get("processed_at")
        log._ids = itertools.count(max_id + 1)
        return log
