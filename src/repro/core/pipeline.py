"""The §4.2 per-alert pipeline, extracted into composable stages.

MyAlertBuddy's per-alert flow — classification → aggregation → filtering →
routing (with delivery retry) — used to live inline in ``buddy.py``.  Here it
is an explicit :class:`AlertPipeline`: an ordered list of
:class:`PipelineStage` objects sharing one :class:`PipelineContext` per
alert.  A stage either advances the context or finishes it with a journal
outcome (``rejected``, ``unmapped``, ``filtered``, ``no_subscribers``,
``routed`` / ``retry_scheduled`` / ``delivery_abandoned``).

The split buys three things:

- **buddy.py shrinks to lifecycle/HA concerns** (incarnations, MDC
  protocol, self-stabilization, rejuvenation) and simply owns a pipeline;
- **each stage is independently unit-testable** against a synthetic context
  (see ``tests/test_core_pipeline.py``);
- **the source side reuses the same module**:
  :class:`SourceDeliveryPipeline` is the delivery-mode entry used by
  :class:`~repro.sources.base.AlertSource`, the baselines'
  ``SimbaStrategy`` and the WISH alert service, so outcome bookkeeping is
  written once.

Determinism contract: the stage order and every RNG draw (processing
latency, routing overhead) are exactly the pre-refactor sequence, so a
fixed seed produces a byte-identical journal (covered by the golden test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

import numpy as np

from repro.core.endpoint import IncomingAlert, SimbaEndpoint
from repro.core.filters import FilterDecision
from repro.errors import AlertRejected

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.addresses import AddressBook
    from repro.core.admission import AdmissionController
    from repro.core.alert import Alert
    from repro.core.buddy import BuddyConfig, BuddyJournal
    from repro.core.delivery_modes import DeliveryMode
    from repro.core.pessimistic_log import LogEntry, PessimisticLog
    from repro.core.subscription import Subscription
    from repro.net.channel import LatencyModel
    from repro.sim.kernel import Environment


@dataclass
class PipelineContext:
    """Everything one alert's trip through the stages can see or mutate."""

    env: "Environment"
    config: "BuddyConfig"
    endpoint: SimbaEndpoint
    log: "PessimisticLog"
    journal: "BuddyJournal"
    rng: np.random.Generator
    incoming: IncomingAlert
    #: The pessimistic-log entry backing this alert, if it arrived by IM.
    entry: Optional["LogEntry"] = None
    # Stage products.
    keyword: Optional[str] = None
    category: Optional[str] = None
    subscriptions: Optional[list["Subscription"]] = None
    failed_users: set[str] = field(default_factory=set)
    finished: bool = False
    outcome_kind: Optional[str] = None
    #: Fencing epoch the trip ran under (replicated pairs only).
    epoch: Optional[int] = None
    #: Tracing only: the open "trip" span and the currently-running stage's
    #: span (stages parent their own spans — e.g. per-subscriber delivery —
    #: under these).  Both None when tracing is off.
    trace_span: Optional[object] = None
    trace_stage: Optional[object] = None

    @property
    def alert(self) -> "Alert":
        return self.incoming.alert

    def finish(self, kind: str, detail: str = "") -> None:
        """Record the terminal journal outcome and mark the log entry
        processed — the log-entry lifecycle every early exit shares."""
        self.finished = True
        self.outcome_kind = kind
        self.journal.record(
            self.env.now, kind, detail, alert_id=self.alert.alert_id
        )
        if self.entry is not None:
            self.log.mark_processed(self.entry.entry_id)


class PipelineStage:
    """One step of the per-alert flow.

    ``run`` is a simulation generator: it may wait (yield timeouts/events)
    and either finishes the context or lets the next stage continue.
    """

    name = "stage"

    def run(self, ctx: PipelineContext):  # pragma: no cover - interface
        raise NotImplementedError
        yield  # noqa: W0101 - marks this as a generator to subclasses


def _admission_for(config) -> Optional["AdmissionController"]:
    """The persistent admission controller, or None when unconfigured.

    Resolved through the config (not the incarnation) so retry budgets
    and dedup keys survive MAB crashes and MDC restarts.
    """
    getter = getattr(config, "admission_controller", None)
    return getter() if getter is not None else None


class AdmissionStage(PipelineStage):
    """Storm-mode load shedding at the front of the pipeline.

    Under storm (arrival rate or inbox depth over threshold), low-priority
    alerts are dropped (``shed``) or folded into a recent same-keyword
    delivery (``coalesced``) — both explicit journal outcomes, never a
    silent drop.  Retries are already-admitted traffic and pass through.
    A permissive config draws no RNG and yields nothing, so journals stay
    byte-identical with admission off.
    """

    name = "admission"

    def run(self, ctx: PipelineContext):
        controller = _admission_for(ctx.config)
        if controller is None or controller.shedder is None:
            return
        if ctx.incoming.retry_users is not None:
            return
        decision = controller.admit(
            ctx.env.now,
            ctx.alert.alert_id,
            ctx.alert.keyword or ctx.alert.subject,
            ctx.alert.severity.value,
            len(ctx.endpoint.alert_inbox),
        )
        if ctx.trace_stage is not None:
            ctx.trace_stage.annotations["admission"] = decision.action
            if decision.reason:
                ctx.trace_stage.annotations["reason"] = decision.reason
        if decision.action == "shed":
            ctx.finish("shed", decision.reason)
        elif decision.action == "coalesce":
            ctx.finish("coalesced", f"into {decision.coalesced_into}")
        return
        yield  # pragma: no cover - purely synchronous stage


class ThrottleStage(PipelineStage):
    """Token-bucket pacing (global + per-recipient) before routing.

    Reserves one token in every configured scope; a short shortage is
    absorbed by waiting for the refill under a ``TimerScope`` (so a crash
    mid-wait cannot leak the timer), while a wait beyond
    ``max_throttle_delay`` rate-limits the alert as an explicit terminal
    outcome instead of queueing unboundedly.
    """

    name = "throttle"

    def run(self, ctx: PipelineContext):
        controller = _admission_for(ctx.config)
        if controller is None:
            return
        wait = controller.reserve_route(ctx.env.now, ctx.config.user)
        if wait is None:
            controller.count_shed("rate_limited")
            if ctx.trace_stage is not None:
                ctx.trace_stage.annotations["admission"] = "rate_limited"
            ctx.finish(
                "rate_limited",
                f"throttle wait over {controller.config.max_throttle_delay:.0f}s",
            )
            return
        if wait > 0:
            if ctx.trace_stage is not None:
                ctx.trace_stage.annotations["throttle_wait"] = round(wait, 3)
            with ctx.env.timers() as timers:
                yield timers.acquire(wait)


class ClassifyStage(PipelineStage):
    """§4.2 "Alert classification": extract the category keyword.

    Pays the per-alert processing latency, then asks the classifier —
    an unaccepted source or unextractable keyword rejects the alert.
    """

    name = "classify"

    def run(self, ctx: PipelineContext):
        yield ctx.env.timeout(ctx.config.processing_latency.draw(ctx.rng))
        try:
            ctx.keyword = ctx.config.classifier.classify(
                ctx.alert, sender=ctx.incoming.sender
            )
        except AlertRejected as exc:
            ctx.finish("rejected", str(exc))


class AggregateStage(PipelineStage):
    """§4.2 "Alert aggregation": map the keyword to a personal category."""

    name = "aggregate"

    def run(self, ctx: PipelineContext):
        ctx.category = ctx.config.aggregator.category_for(ctx.keyword)
        if ctx.category is None:
            ctx.finish("unmapped", f"keyword {ctx.keyword!r}")
        return
        yield  # pragma: no cover - purely synchronous stage


class FilterStage(PipelineStage):
    """§4.2 "Alert filtering": per-category suppression and time windows."""

    name = "filter"

    def run(self, ctx: PipelineContext):
        decision = ctx.config.filters.evaluate(ctx.category, ctx.env.now)
        if decision is not FilterDecision.DELIVER:
            ctx.finish("filtered", f"{ctx.category}: {decision.value}")
        return
        yield  # pragma: no cover - purely synchronous stage


class RouteStage(PipelineStage):
    """§4.2 "Alert routing": deliver to every subscriber of the category.

    Pays the routing overhead, executes each subscriber's delivery mode
    through the endpoint, and records per-subscriber outcomes.  Subscribers
    whose every communication block failed end up in ``ctx.failed_users``
    for the retry stage.
    """

    name = "route"

    def run(self, ctx: PipelineContext):
        config = ctx.config
        subscriptions = config.subscriptions.subscriptions_for(ctx.category)
        if not subscriptions:
            ctx.finish("no_subscribers", ctx.category)
            return
        if ctx.incoming.retry_users is not None:
            subscriptions = [
                s for s in subscriptions if s.user in ctx.incoming.retry_users
            ]
        ctx.subscriptions = subscriptions

        tagged = ctx.alert.with_category(ctx.category)
        yield ctx.env.timeout(config.routing_overhead.draw(ctx.rng))
        tracer = ctx.env.tracer
        for subscription in subscriptions:
            mode = config.subscriptions.mode(
                subscription.user, subscription.mode_name
            )
            book = config.subscriptions.address_book(subscription.user)
            dspan = None
            if tracer is not None:
                dspan = tracer.begin(
                    ctx.alert.alert_id,
                    "deliver.user",
                    parent=(
                        ctx.trace_stage.span_id
                        if ctx.trace_stage is not None
                        else None
                    ),
                    user=subscription.user,
                    mode=subscription.mode_name,
                )
                if ctx.epoch is not None:
                    dspan.annotations["epoch"] = ctx.epoch
            outcome = yield from ctx.endpoint.deliver_alert(
                tagged,
                mode,
                book,
                trace_parent=dspan.span_id if dspan is not None else None,
            )
            if dspan is not None:
                tracer.end(
                    dspan, "delivered" if outcome.delivered else "failed"
                )
            ctx.journal.record(
                ctx.env.now,
                "routed" if outcome.delivered else "delivery_failed",
                f"{subscription.user} via {subscription.mode_name}",
                alert_id=ctx.alert.alert_id,
            )
            if not outcome.delivered:
                ctx.failed_users.add(subscription.user)


class RetryStage(PipelineStage):
    """Re-queue subscribers whose every block failed (§4.2.1 durability).

    An acknowledged alert must never be silently dropped: while attempts
    remain, the alert goes back into the inbox for the failed subscribers
    only, and the log entry stays unprocessed so even a crash inside the
    retry window cannot lose it.
    """

    name = "retry"

    def run(self, ctx: PipelineContext):
        config = ctx.config
        incoming = ctx.incoming
        alert = ctx.alert
        controller = _admission_for(config)
        if (
            ctx.failed_users
            and incoming.attempts + 1 < config.delivery_max_attempts
            and (
                controller is None
                or controller.take_retry_token(alert.alert_id)
            )
        ):
            delay = (
                config.delivery_retry_delay
                if controller is None
                else controller.retry_delay(
                    incoming.attempts, config.delivery_retry_delay
                )
            )
            ctx.journal.record(
                ctx.env.now,
                "retry_scheduled",
                f"attempt {incoming.attempts + 1} for {sorted(ctx.failed_users)}",
                alert_id=alert.alert_id,
            )
            ctx.env.process(
                self._requeue(ctx, incoming, set(ctx.failed_users), delay),
                name=f"retry-{alert.alert_id}",
            )
            # While the chain is in flight, later incoming copies (sender
            # fallback duplicates, recovery replays) must defer to it.
            ctx.journal.retry_pending.add(alert.alert_id)
            if not ctx.failed_users.issuperset(
                s.user for s in ctx.subscriptions
            ):
                # Partial success: successful users must not get it again.
                ctx.journal.routed_ids.add(alert.alert_id)
            ctx.finished = True
            ctx.outcome_kind = "retry_scheduled"
            return
        terminal = "routed"
        if ctx.failed_users:
            if controller is not None and controller.config.retry_budget is not None:
                # Poison path: the alert's cross-incarnation retry budget
                # is spent — park it in the dead-letter queue instead of
                # retrying a persistently-failing delivery forever.
                letter = controller.dead_letter(
                    alert.alert_id,
                    "retry budget exhausted",
                    ctx.env.now,
                    incoming.attempts + 1,
                )
                ctx.journal.record(
                    ctx.env.now,
                    "dead_lettered",
                    f"budget exhausted after {letter.attempts} attempts "
                    f"for {sorted(ctx.failed_users)}",
                    alert_id=alert.alert_id,
                )
                terminal = "dead_lettered"
            else:
                ctx.journal.record(
                    ctx.env.now,
                    "delivery_abandoned",
                    f"gave up after {config.delivery_max_attempts} attempts",
                    alert_id=alert.alert_id,
                )
                terminal = "delivery_abandoned"
        ctx.journal.routed_ids.add(alert.alert_id)
        ctx.journal.retry_pending.discard(alert.alert_id)
        if ctx.entry is not None:
            ctx.log.mark_processed(ctx.entry.entry_id)
        ctx.finished = True
        ctx.outcome_kind = terminal
        return
        yield  # pragma: no cover - only waits inside _requeue

    @staticmethod
    def _requeue(
        ctx: PipelineContext,
        incoming: IncomingAlert,
        failed_users: set[str],
        delay: Optional[float] = None,
    ):
        yield ctx.env.timeout(
            ctx.config.delivery_retry_delay if delay is None else delay
        )
        retry = IncomingAlert(
            alert=incoming.alert,
            via=incoming.via,
            sender=incoming.sender,
            received_at=incoming.received_at,
            seq=incoming.seq,
            attempts=incoming.attempts + 1,
            retry_users=frozenset(failed_users),
            # The retry trip parents under the trip that scheduled it, so
            # the whole retry chain reads as one causal thread.
            trace_parent=(
                ctx.trace_span.span_id if ctx.trace_span is not None else None
            ),
        )
        yield ctx.endpoint.alert_inbox.put(retry)


def default_stages(admission: bool = False) -> list[PipelineStage]:
    """The paper's §4.2 order: classify → aggregate → filter → route → retry.

    With ``admission`` the hardening stages slot in: storm shedding before
    any per-alert work is paid, token-bucket pacing after filtering (no
    point spending tokens on alerts a filter would drop anyway).
    """
    if not admission:
        return [
            ClassifyStage(),
            AggregateStage(),
            FilterStage(),
            RouteStage(),
            RetryStage(),
        ]
    return [
        AdmissionStage(),
        ClassifyStage(),
        AggregateStage(),
        FilterStage(),
        ThrottleStage(),
        RouteStage(),
        RetryStage(),
    ]


class AlertPipeline:
    """Run alerts through the §4.2 stages against one MAB's configuration.

    The pipeline is stateless between alerts (all per-alert state lives in
    the context), so one instance serves every incarnation of a deployment
    — and, in a :class:`~repro.core.farm.BuddyFarm`, thousands of pipelines
    share the same stage *instances* safely.
    """

    def __init__(
        self,
        env: "Environment",
        config: "BuddyConfig",
        endpoint: SimbaEndpoint,
        log: "PessimisticLog",
        journal: "BuddyJournal",
        rng: np.random.Generator,
        stages: Optional[Iterable[PipelineStage]] = None,
        on_progress: Optional[Callable[[], None]] = None,
        on_outcome: Optional[Callable[[PipelineContext], None]] = None,
    ):
        self.env = env
        self.config = config
        self.endpoint = endpoint
        self.log = log
        self.journal = journal
        self.rng = rng
        #: Persistent admission controller (traffic hardening), or None.
        self.admission = _admission_for(config)
        if self.admission is not None:
            # Per-channel provider limits live at the submission layer.
            endpoint.engine.admission = self.admission
        self.stages = (
            list(stages)
            if stages is not None
            else default_stages(admission=self.admission is not None)
        )
        #: Invoked whenever an alert's trip completes a routing pass — the
        #: buddy hooks its progress timestamp (watched by the MDC) here.
        self.on_progress = on_progress
        #: Invoked with the context after every completed trip through the
        #: stages, terminal or not — the chaos testkit's delivery oracle
        #: hooks here to observe outcomes independently of the journal (a
        #: trip that ends with ``finished=False`` dropped the alert).
        self.on_outcome = on_outcome

    def make_context(self, incoming: IncomingAlert) -> PipelineContext:
        return PipelineContext(
            env=self.env,
            config=self.config,
            endpoint=self.endpoint,
            log=self.log,
            journal=self.journal,
            rng=self.rng,
            incoming=incoming,
            entry=self.log.entry_for_alert(incoming.alert.alert_id),
        )

    def _replication_guard(self):
        """The pair side shipping this log, if replication is wired."""
        shipper = getattr(self.log, "shipper", None)
        if shipper is not None and hasattr(shipper, "route_guard"):
            return shipper
        return None

    def process(self, incoming: IncomingAlert):
        """Generator: run one alert through the stages; returns the context."""
        guard = self._replication_guard()
        ctx = self.make_context(incoming)
        tracer = self.env.tracer
        if guard is not None:
            ctx.epoch = guard.epoch
            if not guard.route_guard(incoming):
                # Fenced epoch: this side must not route.  The guard has
                # already forwarded the alert to the active side; the log
                # entry stays unprocessed for reconciliation to hand over.
                ctx.finished = True
                ctx.outcome_kind = "fenced"
                if tracer is not None:
                    tracer.event(
                        ctx.alert.alert_id,
                        "trip.fenced",
                        parent=incoming.trace_parent,
                        user=self.config.user,
                        epoch=guard.epoch,
                    )
                self.journal.record(
                    self.env.now,
                    "fenced",
                    f"via {incoming.via.value}",
                    alert_id=ctx.alert.alert_id,
                )
                if self.on_outcome is not None:
                    self.on_outcome(ctx)
                return ctx
        span = None
        if tracer is not None:
            span = tracer.begin(
                ctx.alert.alert_id,
                "trip",
                parent=incoming.trace_parent,
                user=self.config.user,
                attempt=incoming.attempts,
            )
            if ctx.epoch is not None:
                span.annotations["epoch"] = ctx.epoch
            ctx.trace_span = span
        if incoming.retry_users is None:
            duplicate = None
            if self.admission is not None:
                # Idempotency first: a copy whose dedup key was marked at
                # a prior terminal delivery is suppressed in O(1), bounded
                # memory — the unbounded routed-id set stays as backstop.
                key = self.admission.dedup_check(
                    ctx.alert.alert_id,
                    incoming.via.value,
                    ctx.alert.created_at,
                    self.env.now,
                )
                if key is not None:
                    duplicate = ("dedup_suppressed", key)
            if duplicate is None and (
                ctx.alert.alert_id in self.journal.routed_ids
                or ctx.alert.alert_id in self.journal.retry_pending
            ):
                duplicate = ("duplicate_incoming", f"via {incoming.via.value}")
            if duplicate is not None:
                ctx.finish(*duplicate)
                if guard is not None:
                    yield from guard.after_trip(ctx)
                if span is not None:
                    tracer.end(span, ctx.outcome_kind)
                if self.on_outcome is not None:
                    self.on_outcome(ctx)
                return ctx
        for stage in self.stages:
            sspan = None
            if span is not None:
                sspan = tracer.begin(
                    ctx.alert.alert_id,
                    f"stage.{stage.name}",
                    parent=span.span_id,
                )
                ctx.trace_stage = sspan
            yield from stage.run(ctx)
            if sspan is not None:
                tracer.end(
                    sspan, ctx.outcome_kind if ctx.finished else "ok"
                )
                ctx.trace_stage = None
            if ctx.finished:
                break
        if self.admission is not None and ctx.outcome_kind in (
            "routed", "delivery_abandoned", "dead_lettered"
        ):
            # Delivery reached a terminal accounted state: mark the dedup
            # key so later copies (fallback email, recovery replays in a
            # fresh incarnation) suppress instead of re-routing.  Marking
            # only *here* keeps crash-interrupted trips replayable.
            self.admission.dedup_mark(
                ctx.alert.alert_id, ctx.alert.created_at, self.env.now
            )
        if guard is not None:
            # Ship queued 'processed' marks *before* the outcome becomes
            # observable: a crash mid-ship leaves the trip unobserved, so
            # the standby's replay is the one delivery the oracle sees.
            yield from guard.after_trip(ctx)
        if span is not None:
            tracer.end(
                span,
                ctx.outcome_kind
                if ctx.outcome_kind is not None
                else "unfinished",
            )
        if ctx.outcome_kind in ("retry_scheduled", "routed",
                                "delivery_abandoned"):
            if self.on_progress is not None:
                self.on_progress()
        if self.on_outcome is not None:
            self.on_outcome(ctx)
        return ctx

    def recover(self):
        """Replay unprocessed log entries before accepting new alerts.

        "Every time MyAlertBuddy is restarted, it first checks the log file
        for unprocessed IMs before accepting new alerts" (§4.2.1).
        """
        from repro.core.alert import Alert
        from repro.net.message import ChannelType

        tracer = self.env.tracer
        for entry in self.log.unprocessed():
            self.journal.record(
                self.env.now, "recovery_replay", alert_id=entry.alert_id
            )
            incoming = IncomingAlert(
                alert=Alert.decode(entry.payload),
                via=ChannelType.IM,
                sender="(recovered)",
                received_at=entry.received_at,
            )
            if tracer is not None:
                replay = tracer.event(
                    entry.alert_id,
                    "recovery.replay",
                    user=self.config.user,
                )
                incoming.trace_parent = replay.span_id
            yield from self.process(incoming)


class SourceDeliveryPipeline:
    """Source-side entry into SIMBA: one delivery-mode execution per alert.

    Every alert *producer* — generic :class:`~repro.sources.base.AlertSource`
    subclasses, the baselines' ``SimbaStrategy``, the WISH alert service —
    needs the same three steps: an optional service-processing delay, a
    delivery-mode execution through its endpoint, and outcome bookkeeping.
    This object is that flow, written once.
    """

    def __init__(
        self,
        env: "Environment",
        endpoint: SimbaEndpoint,
        mode: "DeliveryMode",
        processing: Optional["LatencyModel"] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.endpoint = endpoint
        self.mode = mode
        self.processing = processing
        self.rng = rng
        self.outcomes = []
        self.messages_sent = 0

    def send(self, alert: "Alert", book: "AddressBook"):
        """Generator: deliver ``alert`` to ``book``; returns the outcome."""
        if self.processing is not None:
            yield self.env.timeout(self.processing.draw(self.rng))
        tracer = self.env.tracer
        span = None
        if tracer is not None:
            # Root of the alert's causal trace: everything downstream —
            # channel transit, receive, pipeline trip, per-user delivery —
            # parents (transitively) under this span.
            span = tracer.begin(
                alert.alert_id,
                "source.deliver",
                subject=alert.subject,
                endpoint=self.endpoint.name,
            )
        outcome = yield from self.endpoint.deliver_alert(
            alert,
            self.mode,
            book,
            trace_parent=span.span_id if span is not None else None,
        )
        if span is not None:
            tracer.end(
                span, "delivered" if outcome.delivered else "failed"
            )
        self.outcomes.append(outcome)
        self.messages_sent += outcome.messages_sent
        return outcome
