"""The SIMBA library and MyAlertBuddy — the paper's primary contribution.

Layering follows Figure 3 of the paper:

- **Subscription layer** (:mod:`~repro.core.subscription`): user addresses
  (:mod:`~repro.core.addresses`), personal alert categories, personalized
  delivery modes (:mod:`~repro.core.delivery_modes`), all expressed in XML
  (:mod:`~repro.core.xml_codec`).
- **Communication layer** (:mod:`~repro.core.managers`): IM/Email/SMS
  Communication Managers that drive client software through automation
  interfaces and implement *exception-handling automation* — the sanity
  checking API, the shutdown/restart API, and the dialog-box handling API
  with its monkey thread (:mod:`~repro.core.monkey`).
- **Delivery engine** (:mod:`~repro.core.router`) executes delivery modes:
  ordered communication blocks with acknowledgement-or-fallback semantics.
- **MyAlertBuddy** (:mod:`~repro.core.buddy`): classification, aggregation,
  filtering and routing, kept highly available by pessimistic logging
  (:mod:`~repro.core.pessimistic_log`), the MDC watchdog
  (:mod:`~repro.core.watchdog`), self-stabilization
  (:mod:`~repro.core.stabilizer`) and software rejuvenation
  (:mod:`~repro.core.rejuvenation`), all running on a failable
  :mod:`~repro.core.host`.
"""

from repro.core.addresses import AddressBook, UserAddress
from repro.core.admission import (
    AdmissionConfig,
    AdmissionController,
    BackoffPolicy,
    DeadLetter,
    DeadLetterQueue,
    DedupStore,
    LoadShedder,
    TokenBucket,
    dedup_key,
)
from repro.core.alert import Alert, AlertSeverity
from repro.core.buddy import MyAlertBuddy
from repro.core.classifier import AlertClassifier, ExtractionRule
from repro.core.delivery_modes import Action, CommunicationBlock, DeliveryMode
from repro.core.endpoint import SimbaEndpoint
from repro.core.farm import BuddyFarm, FarmProfile, FarmTenant
from repro.core.filters import FilterDecision, FilterPolicy, TimeWindow
from repro.core.host import Host
from repro.core.managers import EmailManager, IMManager, SMSManager
from repro.core.monkey import MonkeyThread
from repro.core.pessimistic_log import LogEntry, PessimisticLog
from repro.core.pipeline import (
    AdmissionStage,
    AggregateStage,
    AlertPipeline,
    ClassifyStage,
    FilterStage,
    PipelineContext,
    PipelineStage,
    RetryStage,
    RouteStage,
    SourceDeliveryPipeline,
    ThrottleStage,
)
from repro.core.rejuvenation import RejuvenationPolicy
from repro.core.replication import (
    EpochAudit,
    FailoverController,
    FencingService,
    PairSide,
    ReplicaRole,
    ReplicatedPair,
    build_pair,
)
from repro.core.router import BlockOutcome, DeliveryEngine, DeliveryOutcome
from repro.core.stabilizer import SelfStabilizer
from repro.core.subscription import Subscription, SubscriptionLayer
from repro.core.user_endpoint import UserEndpoint
from repro.core.watchdog import MasterDaemonController

__all__ = [
    "Action",
    "AddressBook",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStage",
    "AggregateStage",
    "Alert",
    "AlertClassifier",
    "AlertPipeline",
    "AlertSeverity",
    "BackoffPolicy",
    "BlockOutcome",
    "BuddyFarm",
    "ClassifyStage",
    "CommunicationBlock",
    "DeadLetter",
    "DeadLetterQueue",
    "DedupStore",
    "DeliveryEngine",
    "DeliveryMode",
    "DeliveryOutcome",
    "EmailManager",
    "EpochAudit",
    "ExtractionRule",
    "FailoverController",
    "FarmProfile",
    "FarmTenant",
    "FencingService",
    "FilterDecision",
    "FilterPolicy",
    "FilterStage",
    "Host",
    "IMManager",
    "LoadShedder",
    "LogEntry",
    "MasterDaemonController",
    "MonkeyThread",
    "MyAlertBuddy",
    "PairSide",
    "PessimisticLog",
    "PipelineContext",
    "PipelineStage",
    "RejuvenationPolicy",
    "ReplicaRole",
    "ReplicatedPair",
    "RetryStage",
    "RouteStage",
    "SMSManager",
    "SelfStabilizer",
    "SimbaEndpoint",
    "SourceDeliveryPipeline",
    "Subscription",
    "SubscriptionLayer",
    "ThrottleStage",
    "TimeWindow",
    "TokenBucket",
    "UserAddress",
    "UserEndpoint",
    "build_pair",
    "dedup_key",
]
