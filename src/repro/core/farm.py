"""BuddyFarm: thousands of MyAlertBuddies on one simulation kernel.

The paper's workload is a portal serving ≈225k users / ≈778k alerts a day
(§1), but SIMBA's architecture is a *personal* proxy: one MAB per user.
Scaling that design is therefore a deployment problem — many small daemons
against shared channel substrates — and this module is that deployment
layer:

- **Batched tenancy**: :meth:`BuddyFarm.add_users` creates N users and
  their deployments in one call against the world's shared IM/email/SMS
  services; :meth:`BuddyFarm.launch_all` / :meth:`BuddyFarm.teardown_all`
  start and stop every MAB.
- **O(1) routing**: tenants are dict-indexed by user name, by numeric
  index, and by every MAB-facing address, so a replayed log record (or an
  incoming message) finds its deployment without scanning — the per-buddy
  linear wiring a single-user world gets away with does not survive
  thousands of tenants.
- **Determinism by sharding**: tenants are assigned round-robin to shards;
  farm-level randomness (launch staggering) draws from per-shard RNG
  streams, and each deployment keeps its own per-user stream, so results
  are independent of tenant creation order and identical across runs for a
  fixed seed.
- **Aggregate rollups**: journal tallies (O(kinds) per tenant thanks to the
  journal's incremental counters), receipt latencies and delivery ratios
  across the whole farm.

A farm does not change what a MAB *is* — each tenant runs the real
:class:`~repro.core.buddy.MyAlertBuddy` with the full §4.2 pipeline and HA
machinery.  :class:`FarmProfile` only tunes per-tenant configuration (which
categories to subscribe, maintenance cadence, journal bounding) so a
million-alert run stays O(traffic) in memory and kernel events.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.addresses import AddressBook
    from repro.core.admission import AdmissionConfig
    from repro.core.host import Host
    from repro.core.replication import ReplicatedPair
    from repro.core.user_endpoint import Receipt, UserEndpoint
    from repro.core.watchdog import MasterDaemonController
    from repro.world import BuddyDeployment, SimbaWorld


@dataclass
class FarmProfile:
    """Per-tenant configuration the farm applies at creation time."""

    #: Categories each tenant subscribes to (keyword == category).
    categories: tuple[str, ...] = ("News",)
    #: Delivery mode used for every subscription.
    mode_name: str = "normal"
    #: Alert sources every tenant's classifier accepts.
    accept_sources: tuple[str, ...] = ()
    present: bool = True
    ack_enabled: bool = True
    #: Self-stabilization cadence.  The paper runs sanity checks every
    #: minute on one desktop (§4.2.1); with thousands of tenants that is
    #: O(tenants × minutes) kernel events, so farms may stretch it.
    sanity_interval: Optional[float] = None
    monkey_enabled: bool = True
    nightly_enabled: bool = True
    #: Bound each tenant's retained journal events (counts stay exact).
    journal_max_events: Optional[int] = None
    #: Spread launches over [0, launch_stagger) seconds (per-shard RNG) so
    #: periodic maintenance does not fire in lockstep across the farm.
    launch_stagger: float = 0.0
    #: Traffic hardening applied to every tenant (rate limits, dedup,
    #: retry budgets, storm shedding).  None = legacy unhardened path.
    admission: Optional["AdmissionConfig"] = None


@dataclass
class FarmTenant:
    """One user's slice of the farm."""

    name: str
    index: int
    shard: int
    user: "UserEndpoint"
    deployment: "BuddyDeployment"
    book: "AddressBook" = field(repr=False, default=None)
    #: Set by :meth:`BuddyFarm.start_watchdogs` — None under plain
    #: :meth:`BuddyFarm.launch_all`.
    mdc: Optional["MasterDaemonController"] = field(repr=False, default=None)
    #: Set by :meth:`BuddyFarm.enable_replication` — the tenant's
    #: warm-standby pair (None for solo tenants).
    pair: Optional["ReplicatedPair"] = field(repr=False, default=None)


class BuddyFarm:
    """Multi-tenant deployment layer over one :class:`SimbaWorld`."""

    def __init__(
        self,
        world: "SimbaWorld",
        shards: int = 16,
        profile: Optional[FarmProfile] = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.world = world
        self.shards = shards
        self.profile = profile if profile is not None else FarmProfile()
        self.tenants: dict[str, FarmTenant] = {}
        self._by_index: list[FarmTenant] = []
        self._by_address: dict[str, FarmTenant] = {}
        self._shard_rngs = [
            world.rngs.stream(f"farm-shard-{shard}") for shard in range(shards)
        ]
        self._launched = False

    def __len__(self) -> int:
        return len(self._by_index)

    def __iter__(self) -> Iterator[FarmTenant]:
        return iter(self._by_index)

    # ------------------------------------------------------------------
    # Tenancy
    # ------------------------------------------------------------------

    def add_user(self, name: str) -> FarmTenant:
        """Create one user + deployment, configured per the profile."""
        profile = self.profile
        world = self.world
        index = len(self._by_index)
        user = world.create_user(
            name, present=profile.present, ack_enabled=profile.ack_enabled
        )
        deployment = world.create_buddy(
            user, journal_max_events=profile.journal_max_events
        )
        deployment.register_user_endpoint(user)
        for category in profile.categories:
            deployment.subscribe(
                category, user, profile.mode_name, keywords=[category]
            )
        for source_name in profile.accept_sources:
            deployment.config.classifier.accept_source(source_name)
        if profile.sanity_interval is not None:
            deployment.config.sanity_interval = profile.sanity_interval
        deployment.config.monkey_enabled = profile.monkey_enabled
        deployment.config.rejuvenation.nightly_enabled = profile.nightly_enabled
        if profile.admission is not None:
            deployment.config.admission = profile.admission

        tenant = FarmTenant(
            name=name,
            index=index,
            shard=index % self.shards,
            user=user,
            deployment=deployment,
            book=deployment.source_facing_book(),
        )
        self.tenants[name] = tenant
        self._by_index.append(tenant)
        for address in (
            deployment.im_address,
            deployment.email_address,
            user.im_address,
            user.email_address,
        ):
            self._by_address[address] = tenant
        return tenant

    def add_users(self, count: int, prefix: str = "user") -> list[FarmTenant]:
        """Batch-create ``count`` tenants named ``{prefix}{i}``."""
        start = len(self._by_index)
        return [
            self.add_user(f"{prefix}{start + offset}")
            for offset in range(count)
        ]

    # ------------------------------------------------------------------
    # O(1) routing
    # ------------------------------------------------------------------

    def tenant(self, name: str) -> FarmTenant:
        return self.tenants[name]

    def tenant_at(self, index: int) -> FarmTenant:
        return self._by_index[index]

    def route(self, address: str) -> Optional[FarmTenant]:
        """Resolve any MAB- or user-facing address to its tenant, O(1)."""
        return self._by_address.get(address)

    def book_for(self, name: str) -> "AddressBook":
        """The tenant's source-facing address book (cached, §3.3 privacy)."""
        return self.tenants[name].book

    def register_with(self, source) -> None:
        """Subscribe every tenant to ``source`` (dict-indexed on its side)."""
        for tenant in self._by_index:
            source.add_target(tenant.book)

    # ------------------------------------------------------------------
    # Batched lifecycle
    # ------------------------------------------------------------------

    def launch_all(self) -> None:
        """Start one MAB incarnation per tenant.

        With ``launch_stagger`` set, each tenant starts at a per-shard
        random offset inside the window, so thousands of sanity-check and
        nightly-rejuvenation timers do not fire in lockstep.
        """
        if self._launched:
            raise RuntimeError("farm already launched")
        self._launched = True
        stagger = self.profile.launch_stagger
        for tenant in self._by_index:
            if stagger > 0.0:
                delay = float(
                    self._shard_rngs[tenant.shard].uniform(0.0, stagger)
                )
                self.world.env.process(
                    self._delayed_launch(tenant, delay),
                    name=f"farm-launch-{tenant.name}",
                )
            else:
                tenant.deployment.launch()

    def _delayed_launch(self, tenant: FarmTenant, delay: float):
        yield self.world.env.timeout(delay)
        tenant.deployment.launch()

    def enable_replication(
        self,
        standby_hosts: Optional[dict[str, "Host"]] = None,
        **pair_kwargs,
    ) -> dict[str, "ReplicatedPair"]:
        """Give every tenant a warm-standby pair on a second host.

        Each tenant's deployment becomes the *primary* of a
        :class:`~repro.core.replication.ReplicatedPair`: a standby
        deployment (sharing the tenant's config and logical addresses) is
        placed on its own host — ``standby_hosts`` maps tenant name to a
        pre-built host, otherwise one is created per tenant — connected by
        a log-ship :class:`~repro.sim.link.HostLink`, under one farm-wide
        :class:`~repro.core.replication.FencingService`.  Call before
        :meth:`start_watchdogs` so the primary MDCs get their resurrection
        gates attached.  ``pair_kwargs`` forward to ``build_pair``
        (lease/heartbeat tuning, link latency/loss, MDC kwargs).
        """
        from repro.core.replication import FencingService, build_pair

        if self._launched:
            raise RuntimeError(
                "enable replication before launching the farm"
            )
        fencing = pair_kwargs.pop("fencing", None) or FencingService()
        pairs: dict[str, "ReplicatedPair"] = {}
        for tenant in self._by_index:
            if tenant.pair is not None:
                raise RuntimeError(f"{tenant.name!r} is already replicated")
            standby_host = (
                standby_hosts.get(tenant.name) if standby_hosts else None
            )
            tenant.pair = build_pair(
                self.world,
                tenant.deployment,
                standby_host=standby_host,
                fencing=fencing,
                **pair_kwargs,
            )
            pairs[tenant.name] = tenant.pair
        return pairs

    def start_watchdogs(self, **mdc_kwargs) -> None:
        """Put every tenant under its own MDC watchdog (§4.2.1).

        Each MDC launches (and on crash/hang relaunches) its tenant's
        incarnations, so this replaces :meth:`launch_all` — calling both
        would race two incarnations for the same endpoint.  This is the
        launch mode fault-injection rigs (the chaos testkit) need: a farm
        whose tenants survive PROCESS_CRASH / PROCESS_HANG faults.

        For replicated tenants the MDC is attached to the pair: the
        failover controller gates its boot-time restarts (epoch fencing)
        and reuses the same kwargs for the standby's MDC at promotion.
        """
        if self._launched:
            raise RuntimeError("farm already launched")
        self._launched = True
        for tenant in self._by_index:
            tenant.mdc = self.world.start_mdc(tenant.deployment, **mdc_kwargs)
            if tenant.pair is not None:
                tenant.pair.attach_primary_mdc(tenant.mdc, mdc_kwargs)

    def deployments(self) -> list["BuddyDeployment"]:
        """Every tenant's deployment, in tenant-index order."""
        return [tenant.deployment for tenant in self._by_index]

    def teardown_all(self, reason: str = "farm teardown") -> None:
        """Stop every watchdog and terminate every live incarnation.

        MDCs are stopped *with* their buddies (``terminate_buddy=True``):
        a monitor left running would treat the teardown as a crash and
        relaunch, and a buddy left running would be an unmonitored orphan.
        Interrupts are simulation events: call this while the kernel still
        has time to run (or run the world briefly afterwards) so the
        incarnations can unwind cleanly.
        """
        for tenant in self._by_index:
            if tenant.pair is not None:
                tenant.pair.teardown()
            if tenant.mdc is not None:
                tenant.mdc.stop(terminate_buddy=True)
            buddy = tenant.deployment.current
            if buddy is not None and buddy.alive:
                buddy.force_terminate(reason)

    # ------------------------------------------------------------------
    # Aggregate rollups
    # ------------------------------------------------------------------

    def aggregate_counts(self) -> Counter:
        """Sum of every tenant journal's per-kind tallies (O(1) per kind)."""
        total: Counter = Counter()
        for tenant in self._by_index:
            total.update(tenant.deployment.journal.counts())
        return total

    def iter_receipts(self, unique: bool = True) -> Iterator["Receipt"]:
        """Stream every receipt across the farm (``unique`` drops
        duplicates).  The rollup hot path: one pass, nothing materialized —
        at farm scale the receipt population is the largest collection in
        the run, and building a throwaway list of it per rollup dominated
        the A4 profile.
        """
        for tenant in self._by_index:
            for receipt in tenant.user.receipts:
                if unique and receipt.duplicate:
                    continue
                yield receipt

    def receipts(self, unique: bool = True) -> list["Receipt"]:
        """Every receipt across the farm, as a list (see
        :meth:`iter_receipts` for the non-materializing form)."""
        return list(self.iter_receipts(unique=unique))

    def delivery_summary(self) -> dict:
        """Farm-wide delivery rollup: receipts, latency, journal tallies.

        Single pass over the receipt stream: the latency list is the only
        thing kept (``summarize`` needs the values), so rollup cost is
        O(events) with no intermediate Receipt list.
        """
        from repro.metrics.stats import summarize

        latencies = [r.latency for r in self.iter_receipts(unique=True)]
        counts = self.aggregate_counts()
        return {
            "tenants": len(self._by_index),
            "received": len(latencies),
            "latency": summarize(latencies),
            "routed": counts["routed"],
            "delivery_failed": counts["delivery_failed"],
            "counts": counts,
        }

    def admission_summary(self) -> Optional[dict]:
        """Farm-wide admission rollup, or None when hardening is off."""
        totals: Counter = Counter()
        tenants_hardened = 0
        for tenant in self._by_index:
            controller = tenant.deployment.config.admission_controller()
            if controller is None:
                continue
            tenants_hardened += 1
            for key, value in controller.summary().items():
                if key != "owner":
                    totals[key] += value
        if tenants_hardened == 0:
            return None
        return {"tenants_hardened": tenants_hardened, **totals}
