"""Alert classification (§4.2).

"MyAlertBuddy first invokes the Alert Classifier to extract category
information from the alert.  In advance, the user customizes the classifier
by specifying the list of accepted alert sources, and how to extract
category-related keywords from the alerts.  For example, the keywords in
alerts from Yahoo! and Alerts.com appear as part of the email sender name,
while the keywords in MSN Mobile alerts and desktop assistant alerts reside
in the email subject field."

The classifier also "helps the user maintain a list of all the subscribed
alert services, and the information about how to unsubscribe them".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.alert import Alert
from repro.errors import AlertRejected, ConfigurationError


@dataclass(frozen=True)
class ExtractionRule:
    """How to pull the category keyword out of one source's alerts.

    ``field`` is where the source embeds the keyword: ``"sender"`` (Yahoo!,
    Alerts.com style) or ``"subject"`` (MSN Mobile, desktop assistant style).
    An optional ``prefix``/``suffix`` pair strips decoration around the
    keyword, e.g. subject ``"[Stocks] MSFT up 3%"`` with prefix ``"["`` and
    suffix ``"]"`` yields keyword ``"Stocks"``.
    """

    source: str
    field: str = "subject"
    prefix: str = ""
    suffix: str = ""

    def __post_init__(self):
        if self.field not in ("sender", "subject", "keyword"):
            raise ConfigurationError(
                f"extraction field must be sender/subject/keyword, "
                f"got {self.field!r}"
            )

    def extract(self, alert: Alert, sender: str) -> str:
        """Extract the keyword, or raise AlertRejected if it cannot be found."""
        if self.field == "keyword":
            # Structured SIMBA-native alerts carry the keyword explicitly.
            return alert.keyword
        text = sender if self.field == "sender" else alert.subject
        start = 0
        if self.prefix:
            index = text.find(self.prefix)
            if index < 0:
                raise AlertRejected(
                    f"alert from {alert.source!r}: keyword prefix "
                    f"{self.prefix!r} not found in {self.field} {text!r}"
                )
            start = index + len(self.prefix)
        end = len(text)
        if self.suffix:
            index = text.find(self.suffix, start)
            if index < 0:
                raise AlertRejected(
                    f"alert from {alert.source!r}: keyword suffix "
                    f"{self.suffix!r} not found in {self.field} {text!r}"
                )
            end = index
        keyword = text[start:end].strip()
        if not keyword:
            raise AlertRejected(
                f"alert from {alert.source!r}: empty keyword in {text!r}"
            )
        return keyword


@dataclass
class ServiceRecord:
    """What MAB remembers about each subscribed alert service."""

    source: str
    rule: ExtractionRule
    unsubscribe_info: str = ""
    alerts_seen: int = 0


class AlertClassifier:
    """Accepted-source registry plus keyword extraction."""

    def __init__(self):
        self._services: dict[str, ServiceRecord] = {}

    def accept_source(
        self,
        source: str,
        rule: Optional[ExtractionRule] = None,
        unsubscribe_info: str = "",
    ) -> None:
        """Add ``source`` to the accepted list with its extraction rule."""
        if rule is None:
            rule = ExtractionRule(source=source, field="keyword")
        if rule.source != source:
            raise ConfigurationError(
                f"rule source {rule.source!r} does not match {source!r}"
            )
        self._services[source] = ServiceRecord(
            source=source, rule=rule, unsubscribe_info=unsubscribe_info
        )

    def drop_source(self, source: str) -> None:
        self._services.pop(source, None)

    def is_accepted(self, source: str) -> bool:
        return source in self._services

    def subscribed_services(self) -> list[ServiceRecord]:
        """The maintained list of services (with unsubscribe info)."""
        return list(self._services.values())

    def classify(self, alert: Alert, sender: str = "") -> str:
        """Return the native keyword for an alert.

        Raises :class:`AlertRejected` for unaccepted sources — receiving
        unwanted alerts is "extremely intrusive" (§3.3), so anything not on
        the accepted list is refused outright.
        """
        record = self._services.get(alert.source)
        if record is None:
            raise AlertRejected(f"source {alert.source!r} is not accepted")
        keyword = record.rule.extract(alert, sender)
        record.alerts_seen += 1
        return keyword
