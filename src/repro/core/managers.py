"""Communication Managers: exception-handling automation (§4.1.1).

Each Manager wraps one piece of communication client software and provides
the paper's three APIs:

- **Sanity Checking API** — "checks if the process of the client software is
  still running and if the pointers ... are still valid.  Then it performs a
  series of application-specific checks", re-logging-in after spurious
  logouts and escalating unfixable anomalies.
- **Shutdown/Restart API** — "terminates the currently running instance of
  the client software, restarts another instance, and refreshes all its
  pointers to point to the new instance."
- **Dialog-box Handling API** — delegates to the Manager's monkey thread.

The SMS "manager" has no GUI client to babysit (the gateway is a network
service), so it implements only the availability probe — included so the
delivery engine can treat all three channels uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.clients.automation import AutomationHandle
from repro.clients.email_client import EmailClient
from repro.clients.im_client import IMClient
from repro.core.monkey import MonkeyThread
from repro.errors import (
    AutomationError,
    ChannelError,
    ChannelUnavailable,
    ClientHungError,
    DialogBlockedError,
    StalePointerError,
)
from repro.net.email import EmailMessage
from repro.net.im import IMMessage
from repro.net.sms import SMSGateway, SMSMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


@dataclass
class SanityReport:
    """Outcome of one sanity-check pass."""

    healthy: bool
    #: Repairs performed during the check ("re-logon", "restart", ...).
    repairs: list[str] = field(default_factory=list)
    #: Problems observed (possibly already repaired).
    issues: list[str] = field(default_factory=list)
    #: The backing network service is down — nothing local to fix.
    service_down: bool = False
    #: A modal dialog is blocking; the monkey thread owns that repair.
    dialog_blocked: bool = False


@dataclass
class ManagerStats:
    """Recovery-action counters (the E6 bench reports these)."""

    sanity_checks: int = 0
    relogons: int = 0
    restarts: int = 0
    submissions: int = 0
    submission_failures: int = 0


class IMManager:
    """Manager for the GUI IM client."""

    #: Captions this client software is known to pop (client-specific pairs).
    CLIENT_DIALOG_RULES = {
        "Connection lost": "OK",
        "Signed in at another location": "OK",
        "IM service unavailable": "Retry",
    }

    def __init__(
        self,
        env: "Environment",
        client: IMClient,
        monkey_interval: float = 20.0,
    ):
        self.env = env
        self.client = client
        self.monkey = MonkeyThread(
            env,
            client.screen,
            client_rules=dict(self.CLIENT_DIALOG_RULES),
            interval=monkey_interval,
        )
        self.stats = ManagerStats()
        self._handle: Optional[AutomationHandle] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def handle(self) -> AutomationHandle:
        if self._handle is None:
            raise StalePointerError("IM manager holds no automation pointer")
        return self._handle

    def ensure_started(self) -> None:
        """Start the client (and log on) if it is not already running.

        Never raises for client-side trouble: a hung/blocked/offline client
        is left for the minutely sanity checks and the monkey thread to
        repair — startup must not crash-loop on a stuck dialog box.
        """
        if not self.client.running:
            self._handle = self.client.start()
        elif self._handle is None or not self._handle.valid():
            # Client runs but we hold no/stale pointer (fresh MAB incarnation
            # attaching to an already-running client): restart to get clean
            # pointers, exactly what a real automation driver must do.
            self.restart()
            return
        try:
            if not self.client.is_logged_on(self.handle):
                self.client.logon(self.handle)
        except (AutomationError, ChannelError):
            pass  # sanity checks / monkey thread will repair

    def restart(self) -> None:
        """The Shutdown/Restart API."""
        self.stats.restarts += 1
        self.client.terminate()
        self._handle = self.client.start()
        try:
            self.client.logon(self._handle)
        except (AutomationError, ChannelError):
            # Service outage or a blocking system dialog: the sanity checks
            # re-log-on once the obstacle is gone.
            pass

    def shutdown(self) -> None:
        """Orderly shutdown (nightly rejuvenation, §4.2.1 item 2)."""
        if self.client.running and self._handle is not None and self._handle.valid():
            try:
                self.client.logoff(self._handle)
            except AutomationError:
                pass
        self.client.terminate()
        self._handle = None

    # ------------------------------------------------------------------
    # Sanity Checking API
    # ------------------------------------------------------------------

    def sanity_check(self) -> SanityReport:
        """Check, repair what is repairable, report the rest."""
        self.stats.sanity_checks += 1
        report = SanityReport(healthy=True)

        if not self.client.running or self._handle is None or not self._handle.valid():
            report.issues.append("client process dead or pointer stale")
            self.restart()
            report.repairs.append("restart")
        try:
            logged_on = self.client.is_logged_on(self.handle)
        except ClientHungError:
            report.issues.append("client hung")
            self.restart()
            report.repairs.append("restart")
            logged_on = self._probe_logged_on(report)
        except DialogBlockedError as exc:
            report.issues.append(str(exc))
            report.dialog_blocked = True
            report.healthy = False
            return report
        except StalePointerError:
            report.issues.append("pointer went stale mid-check")
            self.restart()
            report.repairs.append("restart")
            logged_on = self._probe_logged_on(report)

        if logged_on is None:
            report.healthy = False
            return report
        if not logged_on:
            # "If it has been logged out due to, for example, server recovery
            # or network disconnection, it will be re-logged in."
            report.issues.append("client logged out")
            try:
                self.client.logon(self.handle)
                self.stats.relogons += 1
                report.repairs.append("re-logon")
            except ChannelUnavailable:
                report.service_down = True
                report.healthy = False
                return report
            except AutomationError as exc:
                report.issues.append(f"re-logon failed: {exc}")
                report.healthy = False
                return report

        if not self.client.service.available:
            report.service_down = True
            report.healthy = False
        return report

    def _probe_logged_on(self, report: SanityReport) -> Optional[bool]:
        """Second attempt at the logged-on probe after a restart."""
        try:
            return self.client.is_logged_on(self.handle)
        except AutomationError as exc:
            report.issues.append(f"still failing after restart: {exc}")
            return None

    # ------------------------------------------------------------------
    # Dialog-box Handling API
    # ------------------------------------------------------------------

    def register_dialog_rule(self, caption: str, button: str) -> None:
        self.monkey.register_rule(caption, button)

    # ------------------------------------------------------------------
    # Sending (used by the delivery engine)
    # ------------------------------------------------------------------

    def submit(
        self,
        address: str,
        subject: str,
        body: str,
        correlation: Optional[str] = None,
    ) -> IMMessage:
        """Send one IM through the client; raises on any failure."""
        self.stats.submissions += 1
        try:
            return self.client.send_instant_message(
                self.handle, address, body, subject=subject, correlation=correlation
            )
        except (AutomationError, ChannelError):
            self.stats.submission_failures += 1
            raise

    def is_recipient_online(self, address: str) -> bool:
        """Presence probe; False also when we cannot ask."""
        try:
            return self.client.buddy_status(self.handle, address)
        except (AutomationError, ChannelError):
            return False


class EmailManager:
    """Manager for the GUI email client."""

    CLIENT_DIALOG_RULES = {
        "Mail delivery problem": "OK",
        "Server not responding": "Cancel",
    }

    def __init__(
        self,
        env: "Environment",
        client: EmailClient,
        monkey_interval: float = 20.0,
    ):
        self.env = env
        self.client = client
        self.monkey = MonkeyThread(
            env,
            client.screen,
            client_rules=dict(self.CLIENT_DIALOG_RULES),
            interval=monkey_interval,
        )
        self.stats = ManagerStats()
        self._handle: Optional[AutomationHandle] = None

    @property
    def handle(self) -> AutomationHandle:
        if self._handle is None:
            raise StalePointerError("email manager holds no automation pointer")
        return self._handle

    def ensure_started(self) -> None:
        if not self.client.running:
            self._handle = self.client.start()
        elif self._handle is None or not self._handle.valid():
            self.restart()

    def restart(self) -> None:
        self.stats.restarts += 1
        self.client.terminate()
        self._handle = self.client.start()

    def shutdown(self) -> None:
        self.client.terminate()
        self._handle = None

    def sanity_check(self) -> SanityReport:
        self.stats.sanity_checks += 1
        report = SanityReport(healthy=True)
        if not self.client.running or self._handle is None or not self._handle.valid():
            report.issues.append("client process dead or pointer stale")
            self.restart()
            report.repairs.append("restart")
        try:
            reachable = self.client.server_reachable(self.handle)
        except ClientHungError:
            report.issues.append("client hung")
            self.restart()
            report.repairs.append("restart")
            try:
                reachable = self.client.server_reachable(self.handle)
            except AutomationError as exc:
                report.issues.append(f"still failing after restart: {exc}")
                report.healthy = False
                return report
        except DialogBlockedError as exc:
            report.issues.append(str(exc))
            report.dialog_blocked = True
            report.healthy = False
            return report
        if not reachable:
            report.service_down = True
            report.healthy = False
        return report

    def register_dialog_rule(self, caption: str, button: str) -> None:
        self.monkey.register_rule(caption, button)

    def submit(
        self,
        address: str,
        subject: str,
        body: str,
        correlation: Optional[str] = None,
        importance: str = "normal",
    ) -> EmailMessage:
        self.stats.submissions += 1
        try:
            return self.client.send_mail(
                self.handle,
                address,
                subject,
                body,
                importance=importance,
                correlation=correlation,
            )
        except (AutomationError, ChannelError):
            self.stats.submission_failures += 1
            raise


class SMSManager:
    """Gateway-facing SMS sender (no client software to manage)."""

    def __init__(self, env: "Environment", gateway: SMSGateway):
        self.env = env
        self.gateway = gateway
        self.stats = ManagerStats()

    def ensure_started(self) -> None:
        """Nothing to start; present for interface uniformity."""

    def shutdown(self) -> None:
        """Nothing to shut down."""

    def sanity_check(self) -> SanityReport:
        self.stats.sanity_checks += 1
        if self.gateway.available:
            return SanityReport(healthy=True)
        return SanityReport(
            healthy=False, service_down=True, issues=["SMS gateway down"]
        )

    def submit(
        self,
        address: str,
        subject: str,
        body: str,
        correlation: Optional[str] = None,
    ) -> SMSMessage:
        """SMS has no subject line; it is folded into the 160-char body."""
        self.stats.submissions += 1
        text = f"{subject}: {body}" if subject else body
        try:
            return self.gateway.send("simba", address, text, correlation=correlation)
        except ChannelError:
            self.stats.submission_failures += 1
            raise
