"""The delivery engine: executes delivery modes block by block.

This is where SIMBA's dependability semantics live (§3.2, §4.1):

- blocks run strictly in order; the first successful block ends delivery;
- within a block, actions on *enabled* addresses fire concurrently;
- an ``require_ack`` block succeeds only when an application-level IM
  acknowledgement arrives within the block's timeout;
- a best-effort block succeeds when at least one channel accepts the
  submission;
- a block with no enabled addresses "automatically fails and falls back to
  the next backup block" (§3.3).

The engine never raises for per-action failures — every failure is recorded
in the :class:`DeliveryOutcome`, because fallback *is* the error handling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.addresses import AddressBook, UserAddress
from repro.core.delivery_modes import CommunicationBlock, DeliveryMode
from repro.errors import AddressUnknownError, SimbaError
from repro.net.message import ChannelType
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class BlockStatus(enum.Enum):
    """How one communication block ended."""

    SUCCESS = "success"
    NO_ENABLED_ADDRESSES = "no_enabled_addresses"
    ALL_SUBMISSIONS_FAILED = "all_submissions_failed"
    ACK_TIMEOUT = "ack_timeout"


@dataclass
class BlockOutcome:
    """Record of one block's execution."""

    index: int
    status: BlockStatus
    submitted: list[str] = field(default_factory=list)
    skipped_disabled: list[str] = field(default_factory=list)
    errors: dict[str, str] = field(default_factory=dict)
    acked_by: Optional[str] = None
    elapsed: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.status is BlockStatus.SUCCESS


@dataclass
class DeliveryOutcome:
    """Record of a full delivery-mode execution for one alert."""

    mode_name: str
    correlation: Optional[str]
    delivered: bool
    blocks: list[BlockOutcome]
    started_at: float
    finished_at: float
    messages_sent: int

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    @property
    def delivered_via(self) -> Optional[int]:
        """Index of the successful block, or None if delivery failed."""
        for outcome in self.blocks:
            if outcome.succeeded:
                return outcome.index
        return None


class AckTable:
    """Pending acknowledgement events keyed by (peer address, IM seq).

    Beyond resolving waits, the table classifies every ack it ever sees so
    the chaos testkit's delivery oracle can assert protocol sanity:

    - ``resolved_count``: acks that satisfied a live wait (the normal case);
    - ``late_count``: acks for a wait that had already timed out — legal,
      the sender simply fell back to the next block;
    - ``duplicate_count``: a *second* ack for a (peer, seq) already acked —
      never legal, this is the "no duplicate ACKs" invariant;
    - ``unsolicited_count``: acks for a (peer, seq) nobody ever expected
      (e.g. a polite receiver acking a fire-and-forget send) — reported,
      not asserted on.

    Sequence numbers are *per-session* (see :mod:`repro.net.im`), so after
    a client relogin the same (peer, seq) key legitimately recurs.  A new
    :meth:`expect` therefore starts a fresh conversation for its key,
    clearing any stale acked state from the previous session.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._pending: dict[tuple[str, int], Event] = {}
        self._expected: set[tuple[str, int]] = set()
        self._acked: set[tuple[str, int]] = set()
        self.resolved_count = 0
        self.late_count = 0
        self.duplicate_count = 0
        self.unsolicited_count = 0

    def expect(self, peer: str, seq: int) -> Event:
        event = self.env.event()
        self._pending[(peer, seq)] = event
        self._expected.add((peer, seq))
        # Seq reuse after a session restart: this key's previous
        # conversation (if any) is over; only acks from the new one count.
        self._acked.discard((peer, seq))
        return event

    def resolve(self, peer: str, seq: int) -> bool:
        """Called when an ack message arrives; True if someone was waiting."""
        key = (peer, seq)
        event = self._pending.pop(key, None)
        if event is None or event.triggered:
            if key in self._acked:
                self.duplicate_count += 1
            elif key in self._expected:
                self.late_count += 1
                self._acked.add(key)
            else:
                self.unsolicited_count += 1
            return False
        event.succeed(self.env.now)
        self.resolved_count += 1
        self._acked.add(key)
        return True

    def cancel(self, peer: str, seq: int) -> None:
        self._pending.pop((peer, seq), None)

    def __len__(self) -> int:
        return len(self._pending)


class DeliveryEngine:
    """Executes delivery modes against a set of channel managers.

    ``managers`` maps :class:`ChannelType` to an object with a
    ``submit(address, subject, body, correlation)`` method (the
    Communication Managers).  The owner (a :class:`SimbaEndpoint`) must feed
    incoming ``SIMBA-ACK`` messages to :attr:`acks` for ack blocks to work.
    """

    def __init__(self, env: "Environment", managers: dict[ChannelType, object]):
        self.env = env
        self.managers = managers
        self.acks = AckTable(env)
        #: Every completed delivery, for metrics.
        self.history: list[DeliveryOutcome] = []
        #: Optional :class:`~repro.core.admission.AdmissionController`
        #: consulted per submission for per-channel provider limits.  An
        #: empty bucket records the failure like any other submission
        #: error, so fallback to the next block *is* the handling.
        self.admission = None

    def execute(
        self,
        mode: DeliveryMode,
        book: AddressBook,
        subject: str,
        body: str,
        correlation: Optional[str] = None,
        trace_parent: Optional[int] = None,
    ):
        """Run a delivery mode (generator; use ``yield from`` or wrap in a
        process).  Returns a :class:`DeliveryOutcome`; never raises for
        delivery failures."""
        started = self.env.now
        tracer = self.env.tracer
        span = None
        if tracer is not None and correlation is not None:
            span = tracer.begin(
                correlation, "deliver", parent=trace_parent, mode=mode.name
            )
        blocks: list[BlockOutcome] = []
        messages = 0
        delivered = False
        for index, block in enumerate(mode.blocks):
            outcome = yield from self._run_block(
                index, block, book, subject, body, correlation, span
            )
            blocks.append(outcome)
            messages += len(outcome.submitted)
            if outcome.succeeded:
                delivered = True
                break
        if span is not None:
            tracer.end(span, "delivered" if delivered else "failed")
        result = DeliveryOutcome(
            mode_name=mode.name,
            correlation=correlation,
            delivered=delivered,
            blocks=blocks,
            started_at=started,
            finished_at=self.env.now,
            messages_sent=messages,
        )
        self.history.append(result)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _resolve_addresses(
        self, block: CommunicationBlock, book: AddressBook, outcome: BlockOutcome
    ) -> list[UserAddress]:
        addresses = []
        for action in block.actions:
            try:
                address = book.get(action.address_ref)
            except AddressUnknownError:
                outcome.errors[action.address_ref] = "unknown address"
                continue
            if not address.enabled:
                outcome.skipped_disabled.append(action.address_ref)
                continue
            addresses.append(address)
        return addresses

    def _run_block(
        self,
        index: int,
        block: CommunicationBlock,
        book: AddressBook,
        subject: str,
        body: str,
        correlation: Optional[str],
        deliver_span=None,
    ):
        start = self.env.now
        tracer = self.env.tracer
        bspan = None
        if tracer is not None and correlation is not None:
            bspan = tracer.begin(
                correlation,
                "block",
                parent=deliver_span.span_id if deliver_span is not None else None,
                index=index,
                require_ack=block.require_ack,
            )
        outcome = BlockOutcome(index=index, status=BlockStatus.NO_ENABLED_ADDRESSES)
        addresses = self._resolve_addresses(block, book, outcome)
        if not addresses:
            if bspan is not None:
                tracer.end(bspan, outcome.status.value)
            return outcome

        ack_events: dict[Event, str] = {}
        pending_keys: list[tuple[str, int]] = []
        for address in addresses:
            manager = self.managers.get(address.channel)
            if manager is None:
                outcome.errors[address.friendly_name] = (
                    f"no manager for channel {address.channel.value}"
                )
                continue
            if self.admission is not None and not self.admission.try_submit(
                self.env.now, address.channel.value
            ):
                outcome.errors[address.friendly_name] = (
                    f"rate_limited: channel {address.channel.value}"
                )
                continue
            try:
                message = manager.submit(
                    address.address, subject, body, correlation
                )
            except SimbaError as exc:
                outcome.errors[address.friendly_name] = str(exc)
                continue
            if bspan is not None:
                # The channel's retroactive transit span parents here.
                message.trace_parent = bspan.span_id
            outcome.submitted.append(address.friendly_name)
            if block.require_ack and address.channel is ChannelType.IM:
                seq = getattr(message, "seq", None)
                if seq is not None:
                    event = self.acks.expect(address.address, seq)
                    ack_events[event] = address.friendly_name
                    pending_keys.append((address.address, seq))

        if not outcome.submitted:
            outcome.status = BlockStatus.ALL_SUBMISSIONS_FAILED
            outcome.elapsed = self.env.now - start
            if bspan is not None:
                tracer.end(bspan, outcome.status.value)
            return outcome

        if not block.require_ack:
            outcome.status = BlockStatus.SUCCESS
            outcome.elapsed = self.env.now - start
            if bspan is not None:
                tracer.end(bspan, outcome.status.value)
            return outcome

        if not ack_events:
            # An ack block whose submissions cannot carry acks (e.g. actions
            # on non-IM addresses) cannot confirm delivery: treat as timeout
            # so the backup block fires — confirmability is the point.
            yield self.env.timeout(0)
            outcome.status = BlockStatus.ACK_TIMEOUT
            outcome.elapsed = self.env.now - start
            if bspan is not None:
                tracer.end(bspan, outcome.status.value)
            return outcome

        wspan = None
        if bspan is not None:
            wspan = tracer.begin(
                correlation,
                "ack.wait",
                parent=bspan.span_id,
                pending=len(ack_events),
            )
        # The ack-vs-timeout race runs under a TimerScope: when the ack
        # wins, the losing guard would otherwise sit in the queue until
        # ``block.ack_timeout`` — one dead entry per delivered alert,
        # which at farm scale dominates the queue.  The scope settles the
        # guard on *any* exit, including an Interrupt or GeneratorExit
        # thrown into this generator mid-wait — exactly the paths a
        # hand-written ``timeout.cancel()`` after the yield would miss.
        with self.env.timers() as timers:
            guard = timers.acquire(block.ack_timeout)
            yield self.env.any_of(list(ack_events) + [guard])
        acked = next(
            (name for event, name in ack_events.items() if event.processed),
            None,
        )
        for peer, seq in pending_keys:
            self.acks.cancel(peer, seq)
        if acked is not None:
            outcome.status = BlockStatus.SUCCESS
            outcome.acked_by = acked
        else:
            outcome.status = BlockStatus.ACK_TIMEOUT
        outcome.elapsed = self.env.now - start
        if wspan is not None:
            if acked is not None:
                tracer.end(wspan, "acked", acked_by=acked)
            else:
                tracer.end(wspan, "timeout")
        if bspan is not None:
            if acked is not None:
                bspan.annotations["acked_by"] = acked
            tracer.end(bspan, outcome.status.value)
        return outcome
