"""User addresses and the per-user address book.

"An XML document for user addresses consists of a list of all of a user's
addresses for alert delivery.  Each address is associated with a
communication type (e.g., 'IM', 'SMS', and 'EM') and identified by a
friendly name such as 'MSN IM', 'Work email'" (§4.1).

Enable/disable is the dynamic-customization primitive of §3.3: "she only
needs to ask MyAlertBuddy to temporarily disable her SMS address.  Any
delivery block that contains an SMS action will automatically fail and fall
back to the next backup block."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import AddressUnknownError, ConfigurationError
from repro.net.message import ChannelType


@dataclass
class UserAddress:
    """One delivery address with its friendly name and type."""

    friendly_name: str
    channel: ChannelType
    address: str
    enabled: bool = True

    def __post_init__(self):
        if not self.friendly_name:
            raise ConfigurationError("address friendly name must be non-empty")
        if not self.address:
            raise ConfigurationError(
                f"address value for {self.friendly_name!r} must be non-empty"
            )


@dataclass
class AddressBook:
    """All of one principal's addresses, keyed by friendly name."""

    owner: str
    _addresses: dict[str, UserAddress] = field(default_factory=dict)

    def add(self, address: UserAddress) -> None:
        """Register an address.  Replacing a friendly name is an error —
        remove first; silent replacement has bitten real users."""
        if address.friendly_name in self._addresses:
            raise ConfigurationError(
                f"{self.owner!r} already has an address named "
                f"{address.friendly_name!r}"
            )
        self._addresses[address.friendly_name] = address

    def remove(self, friendly_name: str) -> None:
        if friendly_name not in self._addresses:
            raise AddressUnknownError(
                f"{self.owner!r} has no address {friendly_name!r}"
            )
        del self._addresses[friendly_name]

    def get(self, friendly_name: str) -> UserAddress:
        try:
            return self._addresses[friendly_name]
        except KeyError:
            raise AddressUnknownError(
                f"{self.owner!r} has no address {friendly_name!r}"
            ) from None

    def __contains__(self, friendly_name: str) -> bool:
        return friendly_name in self._addresses

    def __iter__(self) -> Iterator[UserAddress]:
        return iter(self._addresses.values())

    def __len__(self) -> int:
        return len(self._addresses)

    def set_enabled(self, friendly_name: str, enabled: bool) -> None:
        """The §3.3 dynamic-customization hook (dead phone battery, travel)."""
        self.get(friendly_name).enabled = enabled

    def enabled_addresses(self) -> list[UserAddress]:
        return [a for a in self if a.enabled]

    def first_of_type(self, channel: ChannelType) -> Optional[UserAddress]:
        """First enabled address of the given type, or None."""
        for address in self:
            if address.channel is channel and address.enabled:
                return address
        return None
