"""Self-stabilization: periodic invariant checks and corrections (§4.2.1).

"Since it is very difficult to anticipate all possible failures and to
detect and recover them on the spot, MyAlertBuddy incorporates
self-stabilization mechanisms that periodically check system invariants and
correct violations."

A stabilizer is a bag of named periodic tasks.  Each task callable returns a
list of corrective-action strings (empty = invariant held).  A task that
raises signals an *unrectifiable* violation; the owner's ``on_unrectifiable``
hook decides what to do (MyAlertBuddy triggers rejuvenation, §4.2.1 item 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


@dataclass
class TaskRecord:
    """Execution history of one stabilization task."""

    name: str
    interval: float
    runs: int = 0
    corrections: list[tuple[float, str]] = field(default_factory=list)
    failures: list[tuple[float, str]] = field(default_factory=list)


class SelfStabilizer:
    """Periodic invariant checker."""

    def __init__(
        self,
        env: "Environment",
        on_unrectifiable: Optional[Callable[[str, Exception], None]] = None,
    ):
        self.env = env
        self.on_unrectifiable = on_unrectifiable
        self._tasks: dict[str, tuple[float, Callable[[], list[str]]]] = {}
        self.records: dict[str, TaskRecord] = {}
        self._running = False

    def add_task(
        self, name: str, interval: float, check: Callable[[], list[str]]
    ) -> None:
        """Register a periodic check.  ``check`` returns corrections made."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        if name in self._tasks:
            raise ValueError(f"duplicate stabilization task {name!r}")
        self._tasks[name] = (interval, check)
        self.records[name] = TaskRecord(name=name, interval=interval)

    def start(self) -> None:
        """Start one loop per task (idempotent)."""
        if self._running:
            return
        self._running = True
        for name, (interval, check) in self._tasks.items():
            self.env.process(
                self._loop(name, interval, check), name=f"stabilize-{name}"
            )

    def stop(self) -> None:
        self._running = False

    def run_task_now(self, name: str) -> list[str]:
        """Execute one task immediately (used by AreYouWorking callbacks)."""
        _interval, check = self._tasks[name]
        return self._execute(name, check)

    def total_corrections(self) -> int:
        return sum(len(r.corrections) for r in self.records.values())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _execute(self, name: str, check: Callable[[], list[str]]) -> list[str]:
        record = self.records[name]
        record.runs += 1
        try:
            corrections = check()
        except Exception as exc:  # noqa: BLE001 - invariant escalation path
            record.failures.append((self.env.now, str(exc)))
            if self.on_unrectifiable is not None:
                self.on_unrectifiable(name, exc)
            return []
        for correction in corrections:
            record.corrections.append((self.env.now, correction))
        return corrections

    def _loop(self, name: str, interval: float, check):
        # Scope-acquired interval timers: tearing the task down mid-sleep
        # (incarnation crash, rejuvenation) settles the pending tick.
        with self.env.timers() as timers:
            while self._running:
                yield timers.acquire(interval)
                if not self._running:
                    return
                self._execute(name, check)
