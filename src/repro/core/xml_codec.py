"""XML encoding for user addresses and delivery modes.

"Both user addresses and delivery modes are expressed in XML to allow
extensibility for accommodating new communication addresses" (§4.1).  The
schemas below follow the paper's description of Figure 4.

Address document::

    <userAddresses owner="alice">
      <address type="IM" name="MSN IM" enabled="true">alice@im</address>
      <address type="SMS" name="Cell SMS">+14255550100</address>
      <address type="EM" name="Work email">alice@work</address>
    </userAddresses>

Delivery-mode document (two communication blocks, as in Figure 4)::

    <deliveryMode name="Critical">
      <block requireAck="true" ackTimeout="15">
        <action address="MSN IM"/>
      </block>
      <block>
        <action address="Cell SMS"/>
        <action address="Work email"/>
      </block>
    </deliveryMode>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.addresses import AddressBook, UserAddress
from repro.core.delivery_modes import Action, CommunicationBlock, DeliveryMode
from repro.errors import ConfigurationError
from repro.net.message import ChannelType


def _parse_bool(text: str, context: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise ConfigurationError(f"invalid boolean {text!r} in {context}")


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------

def address_book_to_xml(book: AddressBook) -> str:
    """Serialize an address book to its XML document."""
    root = ET.Element("userAddresses", owner=book.owner)
    for address in book:
        element = ET.SubElement(
            root,
            "address",
            type=address.channel.value,
            name=address.friendly_name,
            enabled="true" if address.enabled else "false",
        )
        element.text = address.address
    return ET.tostring(root, encoding="unicode")


def address_book_from_xml(document: str) -> AddressBook:
    """Parse an address-book XML document."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ConfigurationError(f"malformed address XML: {exc}") from exc
    if root.tag != "userAddresses":
        raise ConfigurationError(
            f"expected <userAddresses>, got <{root.tag}>"
        )
    owner = root.get("owner")
    if not owner:
        raise ConfigurationError("<userAddresses> requires an owner attribute")
    book = AddressBook(owner=owner)
    for element in root:
        if element.tag != "address":
            raise ConfigurationError(
                f"unexpected element <{element.tag}> in address document"
            )
        type_tag = element.get("type")
        name = element.get("name")
        if not type_tag or not name:
            raise ConfigurationError("<address> requires type and name")
        try:
            channel = ChannelType.from_tag(type_tag)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        book.add(
            UserAddress(
                friendly_name=name,
                channel=channel,
                address=(element.text or "").strip(),
                enabled=_parse_bool(
                    element.get("enabled", "true"), f"address {name!r}"
                ),
            )
        )
    return book


# ---------------------------------------------------------------------------
# Delivery modes
# ---------------------------------------------------------------------------

def delivery_mode_to_xml(mode: DeliveryMode) -> str:
    """Serialize a delivery mode to its XML document."""
    root = ET.Element("deliveryMode", name=mode.name)
    for block in mode.blocks:
        attrs = {}
        if block.require_ack:
            attrs["requireAck"] = "true"
            attrs["ackTimeout"] = repr(block.ack_timeout)
        element = ET.SubElement(root, "block", **attrs)
        for action in block.actions:
            ET.SubElement(element, "action", address=action.address_ref)
    return ET.tostring(root, encoding="unicode")


def delivery_mode_from_xml(document: str) -> DeliveryMode:
    """Parse a delivery-mode XML document."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ConfigurationError(f"malformed delivery-mode XML: {exc}") from exc
    if root.tag != "deliveryMode":
        raise ConfigurationError(f"expected <deliveryMode>, got <{root.tag}>")
    name = root.get("name")
    if not name:
        raise ConfigurationError("<deliveryMode> requires a name attribute")
    blocks: list[CommunicationBlock] = []
    for element in root:
        if element.tag != "block":
            raise ConfigurationError(
                f"unexpected element <{element.tag}> in delivery mode"
            )
        actions = []
        for child in element:
            if child.tag != "action":
                raise ConfigurationError(
                    f"unexpected element <{child.tag}> in block"
                )
            address = child.get("address")
            if not address:
                raise ConfigurationError("<action> requires an address")
            actions.append(Action(address_ref=address))
        require_ack = _parse_bool(
            element.get("requireAck", "false"), f"mode {name!r}"
        )
        kwargs = {"actions": actions, "require_ack": require_ack}
        timeout_text = element.get("ackTimeout")
        if timeout_text is not None:
            try:
                kwargs["ack_timeout"] = float(timeout_text)
            except ValueError as exc:
                raise ConfigurationError(
                    f"invalid ackTimeout {timeout_text!r}"
                ) from exc
        blocks.append(CommunicationBlock(**kwargs))
    return DeliveryMode(name=name, blocks=blocks)
