"""The human end of alert delivery: the user's devices.

A user owns an IM identity (logged in only while *present* at a machine), a
phone (SMS inbox) and one or more mailboxes.  The endpoint records a
:class:`Receipt` for every alert that reaches any device — receipts are what
the latency and irritation metrics are computed from — and implements the
paper's duplicate handling: "we use timestamps to allow the user to detect
and discard duplicates" (§4.2.1).

When present, the user acknowledges IM alerts after a human reaction delay,
closing SIMBA's end-to-end synchronous loop (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.alert import Alert
from repro.core.endpoint import make_ack_body
from repro.errors import ChannelError
from repro.net.channel import LatencyModel
from repro.net.email import EmailService
from repro.net.im import IMService, IMSession
from repro.net.message import ChannelType
from repro.net.sms import SMSGateway

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: Human reaction: notice the IM popup and (implicitly) acknowledge it.
DEFAULT_REACTION = LatencyModel(median=2.0, sigma=0.5, low=0.5, high=30.0)


@dataclass
class Receipt:
    """One alert arriving on one of the user's devices."""

    alert_id: str
    channel: ChannelType
    at: float
    created_at: float
    duplicate: bool

    @property
    def latency(self) -> float:
        """Alert age when it reached the device."""
        return self.at - self.created_at


class UserEndpoint:
    """A user's devices plus the receipt/duplicate bookkeeping."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        im_service: IMService,
        email_service: EmailService,
        sms_gateway: SMSGateway,
        im_address: str,
        email_address: str,
        phone_number: str,
        rng: np.random.Generator,
        present: bool = True,
        reaction: LatencyModel = DEFAULT_REACTION,
        ack_enabled: bool = True,
    ):
        self.env = env
        self.name = name
        self.im_service = im_service
        self.email_service = email_service
        self.sms_gateway = sms_gateway
        self.im_address = im_address
        self.email_address = email_address
        self.phone_number = phone_number
        self.rng = rng
        self.reaction = reaction
        self.ack_enabled = ack_enabled

        im_service.register_account(im_address)
        self.receipts: list[Receipt] = []
        #: Corrupt-flagged messages dropped unparsed (failed checksum).
        self.corrupt_discarded = 0
        self._seen: set[str] = set()
        self._session: Optional[IMSession] = None
        self._present = present
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle / presence
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin listening on all devices (idempotent)."""
        if self._started:
            return
        self._started = True
        if self._present:
            self._login()
        self.env.process(self._phone_loop(), name=f"{self.name}-phone")
        self.env.process(self._mail_loop(), name=f"{self.name}-mail")
        self.env.process(self._reconnect_loop(), name=f"{self.name}-reconnect")

    @property
    def present(self) -> bool:
        return self._present

    def set_present(self, present: bool) -> None:
        """Arriving at / leaving the machine: logs the IM identity in or out."""
        if present == self._present:
            return
        self._present = present
        if not self._started:
            return
        if present:
            self._login()
        elif self._session is not None and self._session.active:
            self._session.logout()
            self._session = None

    def _login(self) -> None:
        try:
            self._session = self.im_service.login(self.im_address)
        except ChannelError:
            self._session = None
            return
        self.env.process(
            self._im_loop(self._session), name=f"{self.name}-im"
        )

    def _reconnect_loop(self, interval: float = 30.0):
        """A present user's IM client auto-reconnects after outages/logouts."""
        while True:
            yield self.env.timeout(interval)
            session_dead = self._session is None or not self._session.active
            if self._present and session_dead and self.im_service.available:
                self._login()

    # ------------------------------------------------------------------
    # Receipts
    # ------------------------------------------------------------------

    def _record(self, alert: Alert, channel: ChannelType) -> Receipt:
        # Dedup on the alert id: replays (crash between send and mark) and
        # multi-address fan-out both surface as repeats of the same id.  The
        # timestamp the paper mentions travels in the receipt for forensics.
        key = alert.alert_id
        receipt = Receipt(
            alert_id=key,
            channel=channel,
            at=self.env.now,
            created_at=alert.created_at,
            duplicate=key in self._seen,
        )
        self._seen.add(key)
        self.receipts.append(receipt)
        return receipt

    def unique_alerts_received(self) -> set[str]:
        return {r.alert_id for r in self.receipts if not r.duplicate}

    def duplicates_discarded(self) -> int:
        return sum(1 for r in self.receipts if r.duplicate)

    def messages_received(self) -> int:
        """Total messages across devices — the 'irritation' numerator."""
        return len(self.receipts)

    def receipts_for(self, alert_id: str) -> list[Receipt]:
        return [r for r in self.receipts if r.alert_id == alert_id]

    # ------------------------------------------------------------------
    # Device loops
    # ------------------------------------------------------------------

    def _im_loop(self, session: IMSession):
        while session.active and self._present:
            message = yield session.receive()
            if message.corrupt:
                # Failed checksum: never acked, so the MAB's ack timeout
                # treats the alert as undelivered and falls back.
                self.corrupt_discarded += 1
                continue
            if not Alert.is_alert_payload(message.body):
                continue
            alert = Alert.decode(message.body)
            self._record(alert, ChannelType.IM)
            if self.ack_enabled:
                yield self.env.timeout(self.reaction.draw(self.rng))
                if session.active:
                    try:
                        session.send(
                            message.sender,
                            make_ack_body(message.seq),
                            correlation=alert.alert_id,
                        )
                    except ChannelError:
                        pass  # sender will fall back; we already saw it

    def _phone_loop(self):
        phone = self.sms_gateway.phone(self.phone_number)
        while True:
            message = yield phone.receive()
            if message.corrupt:
                self.corrupt_discarded += 1
                continue
            body = message.body
            if Alert.is_alert_payload(body):
                self._record(Alert.decode(body), ChannelType.SMS)
            else:
                # SMS truncation usually cuts the payload; correlate by the
                # id the sender stamped on the message instead.
                if message.correlation is not None:
                    alert = Alert(
                        source="unknown",
                        keyword="",
                        subject="",
                        body=body,
                        created_at=message.created_at,
                        alert_id=message.correlation,
                    )
                    self._record(alert, ChannelType.SMS)

    def _mail_loop(self):
        mailbox = self.email_service.mailbox(self.email_address)
        while True:
            message = yield mailbox.receive()
            if message.corrupt:
                self.corrupt_discarded += 1
                continue
            if Alert.is_alert_payload(message.body):
                self._record(Alert.decode(message.body), ChannelType.EMAIL)
