"""Warm-standby MAB replication: log shipping, lease failover, epoch fencing.

The paper's availability stack (§4.2.1) heals a MyAlertBuddy *on the same
host* — a host power loss therefore stalls that user's delivery for the
whole outage plus boot.  This module removes that window: each tenant gets a
*pair* of :class:`~repro.world.BuddyDeployment` objects on two hosts sharing
one logical MAB address (``mab-<user>@im`` / ``mab-<user>@mail``).

- **Log shipping.**  The active side's :class:`~repro.core.pessimistic_log.
  PessimisticLog` ships every ``append`` record to the standby over a
  :class:`~repro.sim.link.HostLink` *before* the ack goes out (the pair-wide
  log-before-ack ordering), and ships ``processed`` marks before the
  pipeline records a terminal outcome.  While the link is down
  (:data:`~repro.sim.failures.FaultKind.REPLICATION_LINK_DOWN`) records
  queue as *unshipped* — availability wins over synchronous durability, and
  reconciliation repays the debt.

- **Lease failover.**  The primary heartbeats over the link; a
  :class:`FailoverController` (conceptually running on the standby host)
  promotes the standby when the lease expires.  The promoted side starts its
  own MDC, whose first incarnation replays the mirrored log — exactly the
  §4.2.1 recovery path, just on another machine.

- **Epoch fencing.**  A :class:`FencingService` (an external coordinator —
  the one dependency assumed always reachable) hands out monotonic epochs.
  Every ack and every routing pass first checks that the side's remembered
  epoch is still current; a resurrected or partitioned old primary discovers
  it is fenced, hands its unprocessed entries to the active side
  (*reconciliation*), re-seeds its log from a snapshot and rejoins as the
  standby.  Split-brain is the bug class; the chaos oracle's
  ``at_most_one_active_epoch`` invariant is its detector, fed by the pair's
  :class:`EpochAudit`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.alert import Alert
from repro.core.endpoint import IncomingAlert
from repro.core.host import Host
from repro.core.pessimistic_log import PessimisticLog
from repro.core.stabilizing import TransportAudit, make_receiver, make_sender
from repro.core.watchdog import MasterDaemonController
from repro.net.message import ChannelType
from repro.obs import lifecycle_trace
from repro.sim.link import DEFAULT_LINK_LATENCY, HostLink

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import PipelineContext
    from repro.sim.kernel import Environment
    from repro.world import BuddyDeployment, SimbaWorld

#: Primary → standby keep-alive period.  Much tighter than the MDC's
#: three-minute probe: failover exists precisely to beat boot + relaunch.
DEFAULT_HEARTBEAT_INTERVAL = 5.0
#: Missed heartbeats tolerated before the standby claims the lease.
DEFAULT_LEASE_TIMEOUT = 20.0
#: How often the failover controller re-evaluates the lease.
DEFAULT_LEASE_CHECK_INTERVAL = 2.0
#: Backoff while reconciliation waits for a host or the link to return.
DEFAULT_RECONCILE_RETRY = 5.0
#: Wait step while another process is mid-flush on the ship queue.
_SHIP_POLL = 0.01


class ReplicaRole(enum.Enum):
    """What one side of the pair currently is."""

    PRIMARY = "primary"
    STANDBY = "standby"
    #: Was primary, lost the epoch race, has not finished reconciling.
    FENCED = "fenced"


class FencingService:
    """Monotonic epoch coordinator, external to both hosts.

    Models a small replicated lock service (the one component the design
    assumes is always reachable — it does not live on either pair host and
    the replication-link partition does not cut it off).  ``advance`` is the
    promotion primitive: whoever holds the highest epoch is the only side
    allowed to ack or route.
    """

    def __init__(self):
        self._epochs: dict[str, int] = {}

    def current(self, pair_id: str) -> int:
        return self._epochs.get(pair_id, 0)

    def advance(self, pair_id: str) -> int:
        self._epochs[pair_id] = self.current(pair_id) + 1
        return self._epochs[pair_id]


@dataclass(frozen=True)
class EpochAction:
    """One fencing-relevant action, stamped with the acting side's epoch."""

    epoch: int
    #: "ack" | "route" | "route_done" | "mark_shipped" | "fenced"
    kind: str
    at: float
    alert_id: Optional[str] = None


@dataclass(frozen=True)
class PromotionRecord:
    epoch: int
    at: float
    side: str


@dataclass(frozen=True)
class ReconcileRecord:
    at: float
    side: str
    handed_over: int


class EpochAudit:
    """The pair's forensic trail: who acted under which epoch, when.

    ``ack`` and ``route`` are recorded at *initiation* time, after the
    fencing check passed — so the oracle's ``at_most_one_active_epoch``
    invariant ("no initiation under epoch E at/after the promotion of a
    later epoch") has teeth: a violation means a guard was bypassed, not
    that a legitimately in-flight delivery finished late.
    """

    def __init__(self):
        self.actions: list[EpochAction] = []
        self.promotions: list[PromotionRecord] = []
        self.reconciliations: list[ReconcileRecord] = []
        #: Alerts a fenced side forwarded to the active one instead of
        #: processing (alert_id, at).
        self.forwarded: list[tuple[str, float]] = []
        self.shipped = 0
        self.unshipped_queued = 0

    def record(
        self, epoch: int, kind: str, at: float, alert_id: Optional[str] = None
    ) -> None:
        self.actions.append(EpochAction(epoch, kind, at, alert_id))

    def actions_of(self, kind: str) -> list[EpochAction]:
        return [a for a in self.actions if a.kind == kind]

    def promotion_at(self, epoch: int) -> Optional[float]:
        for record in self.promotions:
            if record.epoch == epoch:
                return record.at
        return None

    def mark_shipped_before(self, alert_id: str, at: float) -> bool:
        """Whether this alert's 'processed' mark reached the standby by
        ``at`` — the fact that makes a later-epoch re-route a real bug."""
        return any(
            a.kind == "mark_shipped" and a.alert_id == alert_id and a.at <= at
            for a in self.actions
        )


class PairSide:
    """One deployment + host of a replicated pair, with its ship queue.

    This object is the :class:`~repro.core.pessimistic_log.LogShipperHook`
    for its deployment's log *and* the guard provider the endpoint and
    pipeline consult (``ack_guard`` / ``route_guard`` / ``after_trip``).
    """

    def __init__(
        self,
        pair: "ReplicatedPair",
        label: str,
        deployment: "BuddyDeployment",
        host: Host,
        role: ReplicaRole,
        epoch: int,
    ):
        self.pair = pair
        self.label = label
        self.deployment = deployment
        self.host = host
        self.role = role
        self.epoch = epoch
        #: A standby may only be promoted once it is a faithful mirror
        #: (true from creation; false from fencing until reconciled).
        self.ready = role is ReplicaRole.STANDBY
        self.last_heartbeat = pair.env.now
        self.mdc: Optional[MasterDaemonController] = None
        #: Records accepted locally but not yet applied on the peer, in
        #: log order (appends and processed marks interleaved).
        self.unshipped: list[dict] = []
        #: Marks written mid-trip, flushed synchronously in ``after_trip``.
        self.pending_marks: list[dict] = []
        self._flushing = False
        self._reconciling = False
        #: Stabilizing (or naive, for the E14 ablation) record transport;
        #: installed by :meth:`ReplicatedPair.attach_transports`.
        self.transport_audit = TransportAudit()
        self.tx = None
        self.rx = None

    def attach_transport(self, kind: str) -> None:
        """Install this side's sender and receiver for ``kind`` transport.

        The receiver's out-of-band apply hook (naive duplicates only)
        resolves ``self.deployment.log`` at call time, so reconciliation's
        log re-seed is honoured automatically.
        """
        self.tx = make_sender(
            kind,
            link=self.pair.link,
            key=f"{self.pair.pair_id}/{self.label}",
            audit=self.transport_audit,
        )
        self.rx = make_receiver(
            kind,
            audit=self.transport_audit,
            apply=lambda record: self.deployment.log.apply_replica_record(
                record
            ),
        )

    # ------------------------------------------------------------------
    # Identity / fencing state
    # ------------------------------------------------------------------

    @property
    def env(self) -> "Environment":
        return self.pair.env

    @property
    def peer(self) -> "PairSide":
        return self.pair.other(self)

    def fenced_now(self) -> bool:
        """Whether a later epoch exists (the side may not know yet)."""
        return self.pair.fencing.current(self.pair.pair_id) != self.epoch

    def notice_fenced(self) -> None:
        """Lazy fencing discovery: flip to FENCED and start reconciling."""
        if self.role is ReplicaRole.PRIMARY:
            self.role = ReplicaRole.FENCED
            self.pair.audit.record(self.epoch, "fenced", self.env.now)
            tracer = self.env.tracer
            if tracer is not None:
                tracer.event(
                    lifecycle_trace(self.pair.pair_id),
                    "replica.fenced",
                    epoch=self.epoch,
                    side=self.label,
                )
            self.pair.controller.on_side_fenced(self)

    # ------------------------------------------------------------------
    # Guards (endpoint ack path / pipeline route path)
    # ------------------------------------------------------------------

    def ack_guard(self, incoming: IncomingAlert) -> bool:
        """May this side acknowledge (and enqueue) an incoming alert?"""
        if self.role is not ReplicaRole.PRIMARY or self.fenced_now():
            self.notice_fenced()
            self.forward_to_active(incoming)
            return False
        if incoming.seq is not None:
            self.pair.audit.record(
                self.epoch, "ack", self.env.now, incoming.alert.alert_id
            )
        return True

    def route_guard(self, incoming: IncomingAlert) -> bool:
        """May this side start a pipeline trip for an alert?"""
        if self.role is not ReplicaRole.PRIMARY or self.fenced_now():
            self.notice_fenced()
            self.forward_to_active(incoming)
            return False
        self.pair.audit.record(
            self.epoch, "route", self.env.now, incoming.alert.alert_id
        )
        return True

    def current_epoch(self) -> int:
        """For stamping into outgoing acks."""
        return self.epoch

    def forward_to_active(self, incoming: IncomingAlert) -> None:
        """Hand an alert this side must not touch to the active side."""
        self.pair.audit.forwarded.append(
            (incoming.alert.alert_id, self.env.now)
        )
        self.env.process(
            self.pair.controller.hand_to_active(
                self.host,
                incoming.alert,
                incoming.received_at,
                trace_parent=incoming.trace_parent,
            ),
            name=f"repl-forward-{incoming.alert.alert_id}",
        )

    # ------------------------------------------------------------------
    # LogShipperHook
    # ------------------------------------------------------------------

    def on_append(self, record: dict):
        """Ship one append before the ack goes out (generator)."""
        if self.role is not ReplicaRole.PRIMARY:
            # A fenced side's append stays local; reconciliation hands the
            # (unprocessed) entry over instead of shipping the record.
            return
        if self.fenced_now():
            self.notice_fenced()
            return
        self.unshipped.append(record)
        while self._flushing:
            yield self.env.timeout(_SHIP_POLL)
        yield from self.flush_unshipped()

    def on_mark(self, record: dict) -> None:
        """Queue a 'processed' mark; shipped in :meth:`after_trip`."""
        self.pending_marks.append(record)

    def after_trip(self, ctx: "PipelineContext"):
        """Pipeline epilogue: audit the completion, flush queued marks.

        Runs *before* the trip's outcome observer fires, so a crash while
        the mark is still in flight leaves the trip unobserved — and the
        standby's replay then produces the only observed delivery.
        """
        if ctx.outcome_kind in ("routed", "retry_scheduled",
                                "delivery_abandoned"):
            self.pair.audit.record(
                self.epoch, "route_done", self.env.now, ctx.alert.alert_id
            )
        if self.role is not ReplicaRole.PRIMARY:
            return
        if self.pending_marks:
            self.unshipped.extend(self.pending_marks)
            self.pending_marks.clear()
        while self._flushing:
            yield self.env.timeout(_SHIP_POLL)
        yield from self.flush_unshipped()

    def flush_unshipped(self):
        """Ship queued records in order (generator; single-flight)."""
        if self._flushing:
            return
        self._flushing = True
        try:
            while self.unshipped and self.role is ReplicaRole.PRIMARY:
                if self.fenced_now():
                    self.notice_fenced()
                    return
                peer = self.peer
                if not self.pair.link.usable(toward=peer.host):
                    self.pair.audit.unshipped_queued += 1
                    return
                ok = yield from self.tx.ship(
                    self.unshipped[0], toward=peer.host, rx=peer.rx
                )
                if not ok:
                    self.pair.audit.unshipped_queued += 1
                    return
                if not self.unshipped:
                    # Reconciliation cleared the queue mid-transfer (its
                    # snapshot already covers everything that was here).
                    return
                self._apply_on_peer(self.unshipped.pop(0))
                if not self.unshipped:
                    self.transport_audit.last_drained_at = self.env.now
        finally:
            self._flushing = False

    def _apply_on_peer(self, record: dict) -> None:
        self.peer.deployment.log.apply_replica_record(record)
        self.pair.audit.shipped += 1
        if record.get("op") == "processed":
            entry = self.deployment.log.entry(record["entry_id"])
            self.pair.audit.record(
                self.epoch,
                "mark_shipped",
                self.env.now,
                entry.alert_id if entry is not None else None,
            )

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def heartbeat_loop(self):
        """Primary-side keep-alive; doubles as the post-partition catch-up.

        The interval timer is acquired through a :class:`TimerScope` held
        for the loop's whole life: when a crash or fencing handoff closes
        this generator mid-sleep, the scope settles the pending beat
        instead of leaving it to fire into a dead loop.
        """
        with self.env.timers() as timers:
            yield from self._heartbeat_loop(timers)

    def _heartbeat_loop(self, timers):
        while self.role is ReplicaRole.PRIMARY:
            yield timers.acquire(self.pair.heartbeat_interval)
            if self.role is not ReplicaRole.PRIMARY:
                return
            if self.fenced_now():
                # The fencing check rides on the coordinator, not the link:
                # a partitioned-but-alive primary self-fences within one
                # beat instead of flip-flopping IM sessions with the new
                # primary.
                self.notice_fenced()
                return
            if not self.host.up:
                continue
            peer = self.peer
            if not self.pair.link.usable(toward=peer.host):
                continue
            ok = yield from self.pair.link.transfer(toward=peer.host)
            if not ok:
                continue
            peer.last_heartbeat = self.env.now
            if self.unshipped or self.pending_marks:
                self.unshipped.extend(self.pending_marks)
                self.pending_marks.clear()
                while self._flushing:
                    yield self.env.timeout(_SHIP_POLL)
                yield from self.flush_unshipped()


class ReplicatedPair:
    """Two deployments, one logical MAB address, one active epoch."""

    def __init__(
        self,
        env: "Environment",
        pair_id: str,
        primary: "BuddyDeployment",
        standby: "BuddyDeployment",
        primary_host: Host,
        standby_host: Host,
        link: HostLink,
        fencing: FencingService,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        transport: str = "stabilizing",
    ):
        self.env = env
        self.pair_id = pair_id
        self.link = link
        self.fencing = fencing
        self.heartbeat_interval = heartbeat_interval
        self.transport_kind = transport
        self.audit = EpochAudit()
        # Epoch 1 belongs to the initial primary; promotions advance it.
        first_epoch = fencing.advance(pair_id)
        self.audit.promotions.append(
            PromotionRecord(epoch=first_epoch, at=env.now, side="a")
        )
        self.a = PairSide(self, "a", primary, primary_host,
                          ReplicaRole.PRIMARY, first_epoch)
        self.b = PairSide(self, "b", standby, standby_host,
                          ReplicaRole.STANDBY, 0)
        self.active = self.a
        self.controller: Optional[FailoverController] = None
        for side in (self.a, self.b):
            side.attach_transport(transport)
            side.deployment.log.shipper = side
            side.deployment.endpoint.ack_guard = side.ack_guard
            side.deployment.endpoint.epoch_provider = side.current_epoch
            # A side that was dark holds a stale lease clock; claiming the
            # lease straight out of boot would promote over a healthy
            # primary (safe under fencing, but pure churn).  Booting
            # restarts the lease timer instead.
            side.host.on_boot(
                lambda side=side: setattr(
                    side, "last_heartbeat", self.env.now
                )
            )

    def other(self, side: PairSide) -> PairSide:
        return self.b if side is self.a else self.a

    @property
    def passive_side(self) -> PairSide:
        return self.other(self.active)

    def sides(self) -> tuple[PairSide, PairSide]:
        return (self.a, self.b)

    def side_of(self, deployment: "BuddyDeployment") -> Optional[PairSide]:
        for side in self.sides():
            if side.deployment is deployment:
                return side
        return None

    def attach_primary_mdc(
        self, mdc: MasterDaemonController, mdc_kwargs: Optional[dict] = None
    ) -> None:
        """Wire the watchdog launched for the initial primary into the pair.

        The MDC hands off to the failover controller instead of fighting
        it: its boot-time restart goes through the resurrection gate, so a
        fenced old primary reconciles instead of relaunching.
        """
        side = self.a
        side.mdc = mdc
        mdc.resurrection_gate = self.controller.gate_for(side, mdc)
        if mdc_kwargs is not None:
            self.controller.mdc_kwargs = dict(mdc_kwargs)

    def teardown(self) -> None:
        """Stop the controller and both sides' watchdogs/incarnations."""
        if self.controller is not None:
            self.controller.stop()
        for side in self.sides():
            if side.mdc is not None:
                side.mdc.stop(terminate_buddy=True)


class FailoverController:
    """Detects primary death via lease expiry; promotes; reconciles.

    Conceptually this runs on whichever host is *not* the primary (the
    lease monitor only acts while the standby's host is up), with the
    fencing decisions delegated to the external :class:`FencingService`.
    """

    def __init__(
        self,
        env: "Environment",
        pair: ReplicatedPair,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        check_interval: float = DEFAULT_LEASE_CHECK_INTERVAL,
        retry_interval: float = DEFAULT_RECONCILE_RETRY,
        mdc_kwargs: Optional[dict] = None,
    ):
        self.env = env
        self.pair = pair
        self.lease_timeout = lease_timeout
        self.check_interval = check_interval
        self.retry_interval = retry_interval
        self.mdc_kwargs = dict(mdc_kwargs) if mdc_kwargs else {}
        self.running = False
        self.promotions = 0
        pair.controller = self

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.env.process(
            self._monitor(), name=f"failover-{self.pair.pair_id}"
        )

    def stop(self) -> None:
        self.running = False

    # ------------------------------------------------------------------
    # Lease monitoring / promotion
    # ------------------------------------------------------------------

    def _monitor(self):
        # Lease checks ride on scope-acquired timers: stopping the
        # controller mid-sleep settles the pending check structurally.
        with self.env.timers() as timers:
            yield from self._monitor_loop(timers)

    def _monitor_loop(self, timers):
        while self.running:
            yield timers.acquire(self.check_interval)
            if not self.running:
                return
            side = self.pair.passive_side
            if side.role is not ReplicaRole.STANDBY or not side.ready:
                continue
            if not side.host.up:
                continue  # the controller lives with the standby
            if self.env.now - side.last_heartbeat <= self.lease_timeout:
                continue
            self.promote(side)

    def promote(self, standby: PairSide) -> None:
        """Advance the epoch and make ``standby`` the active primary."""
        pair = self.pair
        epoch = pair.fencing.advance(pair.pair_id)
        standby.epoch = epoch
        standby.role = ReplicaRole.PRIMARY
        standby.ready = False
        pair.active = standby
        pair.audit.promotions.append(
            PromotionRecord(epoch=epoch, at=self.env.now, side=standby.label)
        )
        standby.deployment.journal.record(
            self.env.now, "failover_promotion", f"epoch {epoch}"
        )
        tracer = self.env.tracer
        if tracer is not None:
            tracer.event(
                lifecycle_trace(pair.pair_id),
                "failover.promote",
                epoch=epoch,
                side=standby.label,
                user=pair.pair_id,
            )
        self.promotions += 1
        mdc = MasterDaemonController(
            self.env,
            standby.host,
            buddy_factory=standby.deployment.make_incarnation,
            **self.mdc_kwargs,
        )
        mdc.resurrection_gate = self.gate_for(standby, mdc)
        standby.mdc = mdc
        # Starting the MDC launches an incarnation whose endpoint start
        # re-logs-in the shared IM address (force-logging-out the old
        # primary's session) and whose recovery pass replays every
        # unprocessed mirrored entry — §4.2.1, on the other machine.
        mdc.start()
        self.env.process(
            standby.heartbeat_loop(),
            name=f"heartbeat-{pair.pair_id}-{standby.label}",
        )

    def gate_for(self, side: PairSide, mdc: MasterDaemonController):
        """Resurrection gate: boot-time restarts defer to the epoch."""

        def gate() -> bool:
            if side.mdc is not mdc:
                return False  # superseded controller generation
            if side.role is ReplicaRole.PRIMARY and not side.fenced_now():
                return True
            # The machine came back holding a stale epoch: reconcile
            # instead of relaunching — this is what prevents split-brain
            # double-routing after a resurrection.
            side.notice_fenced()
            self.on_side_fenced(side)
            return False

        return gate

    # ------------------------------------------------------------------
    # Fencing discovery / reconciliation
    # ------------------------------------------------------------------

    def on_side_fenced(self, side: PairSide) -> None:
        if side._reconciling or side.role is ReplicaRole.STANDBY:
            return
        side._reconciling = True
        self.env.process(
            self._reconcile(side),
            name=f"reconcile-{self.pair.pair_id}-{side.label}",
        )

    def hand_to_active(
        self,
        source_host: Host,
        alert: Alert,
        received_at: float,
        sender: str = "(reconciled)",
        trace_parent: Optional[int] = None,
    ):
        """Durably transfer one alert to the active side (generator).

        Appends to the active log first (so a crash mid-handoff is covered
        by the active side's own replay), then enqueues for its pipeline.
        Retries across link partitions and host outages until it lands.
        """
        tracer = self.env.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                alert.alert_id,
                "failover.handoff",
                parent=trace_parent,
                pair=self.pair.pair_id,
            )
        while True:
            active = self.pair.active
            if (
                source_host.up
                and active.host.up
                and self.pair.link.usable(toward=active.host)
            ):
                ok = yield from self.pair.link.transfer(toward=active.host)
                if ok:
                    break
            yield self.env.timeout(self.retry_interval)
        active = self.pair.active
        deployment = active.deployment
        if not deployment.log.has_seen(alert.alert_id):
            yield from deployment.log.append(alert.alert_id, alert.encode())
        incoming = IncomingAlert(
            alert=alert,
            via=ChannelType.IM,
            sender=sender,
            received_at=received_at,
        )
        if span is not None:
            incoming.trace_parent = span.span_id
        yield deployment.endpoint.alert_inbox.put(incoming)
        if span is not None:
            tracer.end(span, "landed", epoch=active.epoch)

    def _reconcile(self, side: PairSide):
        """Fenced-side recovery: hand over, re-seed, rejoin as standby."""
        pair = self.pair
        side.role = ReplicaRole.FENCED
        side.ready = False
        side.deployment.journal.record(
            self.env.now, "fenced", f"epoch {side.epoch} superseded"
        )
        if side.mdc is not None:
            side.mdc.stop(terminate_buddy=True)
        yield self.env.timeout(0)  # let the interrupted incarnation unwind
        side.deployment.endpoint.stop()
        handed = 0
        for entry in list(side.deployment.log.unprocessed()):
            yield from self.hand_to_active(
                side.host, Alert.decode(entry.payload), entry.received_at
            )
            side.deployment.log.mark_processed(entry.entry_id)
            handed += 1
        side.pending_marks.clear()
        side.unshipped.clear()
        # Snapshot re-seed: the side's own log is now obsolete (every entry
        # processed or handed over); a fresh mirror of the active log also
        # guarantees future shipped entry ids cannot collide with ours.
        while True:
            active = pair.active
            if side.host.up and pair.link.usable(toward=side.host):
                ok = yield from pair.link.transfer(toward=side.host)
                if ok:
                    break
            yield self.env.timeout(self.retry_interval)
        active = pair.active
        fresh = PessimisticLog(
            self.env, write_latency=side.deployment.log.write_latency
        )
        for record in active.deployment.log.snapshot_records():
            fresh.apply_replica_record(record)
        fresh.shipper = side
        side.deployment.log = fresh
        # Everything the active side still had queued is inside the
        # snapshot we just applied.
        active.unshipped.clear()
        side.role = ReplicaRole.STANDBY
        side.ready = True
        side.last_heartbeat = self.env.now
        side._reconciling = False
        side.deployment.journal.record(
            self.env.now,
            "rejoined_standby",
            f"handed over {handed}, mirroring epoch {active.epoch}",
        )
        pair.audit.reconciliations.append(
            ReconcileRecord(at=self.env.now, side=side.label,
                            handed_over=handed)
        )


def build_pair(
    world: "SimbaWorld",
    deployment: "BuddyDeployment",
    standby_host: Optional[Host] = None,
    fencing: Optional[FencingService] = None,
    link_latency=DEFAULT_LINK_LATENCY,
    link_loss: float = 0.0,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    check_interval: float = DEFAULT_LEASE_CHECK_INTERVAL,
    retry_interval: float = DEFAULT_RECONCILE_RETRY,
    mdc_kwargs: Optional[dict] = None,
    transport: str = "stabilizing",
) -> ReplicatedPair:
    """Wire a warm standby for an existing deployment and start its
    failover controller (the primary's own MDC is attached separately via
    :meth:`ReplicatedPair.attach_primary_mdc`, or never — a pair also
    protects a directly-launched buddy)."""
    from repro.world import BuddyDeployment

    user = deployment.user_name
    env = world.env
    if standby_host is None:
        standby_host = Host(env, name=f"standby-{user}")
    standby = BuddyDeployment(
        world,
        user,
        host=standby_host,
        config=deployment.config,
        rng_label=f"standby-{user}",
    )
    link = HostLink(
        env,
        deployment.host,
        standby_host,
        rng=world.rngs.stream(f"repl-link-{user}"),
        latency=link_latency,
        loss_probability=link_loss,
    )
    pair = ReplicatedPair(
        env,
        pair_id=user,
        primary=deployment,
        standby=standby,
        primary_host=deployment.host,
        standby_host=standby_host,
        link=link,
        fencing=fencing if fencing is not None else FencingService(),
        heartbeat_interval=heartbeat_interval,
        transport=transport,
    )
    controller = FailoverController(
        env,
        pair,
        lease_timeout=lease_timeout,
        check_interval=check_interval,
        retry_interval=retry_interval,
        mdc_kwargs=mdc_kwargs,
    )
    controller.start()
    env.process(
        pair.a.heartbeat_loop(), name=f"heartbeat-{user}-a"
    )
    return pair
