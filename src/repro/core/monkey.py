"""The monkey thread: dialog-box handling automation (§4.1.1).

"Each Communication Manager maintains a 'monkey thread', whose only job is
to look for dialog boxes with matching captions and 'click' on the
appropriate buttons ...  some of the caption-button pairs are
system-generic, while the rest are specific to the associated client
software.  To handle dialog boxes that are specific to each operating
environment, each Manager provides an API for specifying additional
caption-button pairs."

Dialogs whose captions are not registered are left on screen — that is the
paper's residual failure mode ("two [failures] were caused by previously
unknown dialog boxes"), fixed operationally by registering new pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.clients.dialogs import DialogBox
from repro.clients.screen import Screen

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

#: "Unprocessed dialog boxes are checked every 20 seconds" (§4.2.1).
DEFAULT_SCAN_INTERVAL = 20.0

#: Caption → button pairs any Windows machine of the era would need.
SYSTEM_GENERIC_RULES: dict[str, str] = {
    "Low disk space": "OK",
    "Windows update": "Later",
    "Unexpected error": "OK",
}


@dataclass
class ClickRecord:
    """Audit entry for one monkey click."""

    caption: str
    button: str
    at: float
    owner: Optional[str]


class MonkeyThread:
    """Periodic screen scanner that clicks registered caption/button pairs."""

    def __init__(
        self,
        env: "Environment",
        screen: Screen,
        client_rules: Optional[dict[str, str]] = None,
        interval: float = DEFAULT_SCAN_INTERVAL,
    ):
        if interval <= 0:
            raise ValueError(f"scan interval must be positive, got {interval!r}")
        self.env = env
        self.screen = screen
        self.interval = interval
        self._rules: dict[str, str] = dict(SYSTEM_GENERIC_RULES)
        if client_rules:
            self._rules.update(client_rules)
        self.clicks: list[ClickRecord] = []
        #: Captions seen on screen with no matching rule (forensics: these
        #: are the "previously unknown dialog boxes").
        self.unknown_captions: set[str] = set()
        self._running = False

    def register_rule(self, caption: str, button: str) -> None:
        """The §4.1.1 API "for specifying additional caption-button pairs"."""
        if not caption or not button:
            raise ValueError("caption and button must be non-empty")
        self._rules[caption] = button

    def rules(self) -> dict[str, str]:
        return dict(self._rules)

    def scan_once(self) -> int:
        """One pass over the screen; returns how many dialogs were clicked."""
        clicked = 0
        for dialog in list(self.screen.open_dialogs()):
            if self._click_if_known(dialog):
                clicked += 1
        return clicked

    def _click_if_known(self, dialog: DialogBox) -> bool:
        button = self._rules.get(dialog.caption)
        if button is None:
            self.unknown_captions.add(dialog.caption)
            return False
        if button not in dialog.buttons:
            # A registered pair that no longer matches the dialog's buttons
            # is as useless as no pair at all.
            self.unknown_captions.add(dialog.caption)
            return False
        self.screen.click(dialog, button)
        self.clicks.append(
            ClickRecord(
                caption=dialog.caption,
                button=button,
                at=self.env.now,
                owner=dialog.owner,
            )
        )
        return True

    def start(self) -> None:
        """Begin periodic scanning (idempotent)."""
        if self._running:
            return
        self._running = True
        self.env.process(self._loop(), name="monkey-thread")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.env.timeout(self.interval)
            if self._running:
                self.scan_once()
