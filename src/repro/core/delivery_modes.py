"""Delivery modes: SIMBA's abstraction for personalized dependability.

"An XML document for a delivery mode contains one or more communication
blocks, each of which contains one or more actions.  Each action maps to the
friendly name of an address" (§4.1, Figure 4).

Execution semantics (§3.2/§3.3 and DESIGN.md §5):

- Blocks are tried strictly in order; the first *successful* block ends
  delivery; a failed block "falls back to the next backup block".
- Within a block, all actions on currently-*enabled* addresses fire
  concurrently.  Actions on disabled addresses are skipped ("only actions
  that map to enabled addresses at that time are performed", §4.1).
- A block with ``require_ack`` succeeds only if an application-level
  acknowledgement arrives within ``ack_timeout``; a best-effort block
  succeeds if at least one channel accepted the submission.
- A block with no enabled addresses fails immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default patience for an IM acknowledgement before falling back.  Generous
#: relative to the ~1.5 s ack RTT the paper measures, small relative to
#: email's minutes-to-days tail.
DEFAULT_ACK_TIMEOUT = 15.0


@dataclass(frozen=True)
class Action:
    """One delivery attempt: send via the address named ``address_ref``."""

    address_ref: str

    def __post_init__(self):
        if not self.address_ref:
            raise ConfigurationError("action must reference an address name")


@dataclass
class CommunicationBlock:
    """A set of concurrent actions with a shared success policy."""

    actions: list[Action]
    require_ack: bool = False
    ack_timeout: float = DEFAULT_ACK_TIMEOUT

    def __post_init__(self):
        if not self.actions:
            raise ConfigurationError("a communication block needs >= 1 action")
        if self.ack_timeout <= 0:
            raise ConfigurationError(
                f"ack_timeout must be positive, got {self.ack_timeout!r}"
            )
        seen = set()
        for action in self.actions:
            if action.address_ref in seen:
                raise ConfigurationError(
                    f"duplicate action for address {action.address_ref!r} "
                    "within one block"
                )
            seen.add(action.address_ref)


@dataclass
class DeliveryMode:
    """A named, ordered list of communication blocks.

    The user "defines a set of personalized delivery modes, each of which
    corresponds to a personalized dependability level" (§1), identified by a
    friendly name like "Critical" or "Digest".
    """

    name: str
    blocks: list[CommunicationBlock] = field(default_factory=list)

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("delivery mode needs a non-empty name")
        if not self.blocks:
            raise ConfigurationError(
                f"delivery mode {self.name!r} needs >= 1 communication block"
            )

    def referenced_addresses(self) -> set[str]:
        """Every friendly name any action in this mode refers to."""
        return {
            action.address_ref
            for block in self.blocks
            for action in block.actions
        }


def im_ack_then_email(
    im_address_ref: str = "IM",
    email_address_ref: str = "Email",
    ack_timeout: float = DEFAULT_ACK_TIMEOUT,
) -> DeliveryMode:
    """The paper's canonical mode: "IM-with-acknowledgement followed by
    email" (§4.2) — used by every alert source to reach MyAlertBuddy."""
    return DeliveryMode(
        name="im-ack-then-email",
        blocks=[
            CommunicationBlock(
                actions=[Action(im_address_ref)],
                require_ack=True,
                ack_timeout=ack_timeout,
            ),
            CommunicationBlock(actions=[Action(email_address_ref)]),
        ],
    )
