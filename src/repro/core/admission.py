"""Traffic hardening in front of the §4.2 delivery pipeline.

SIMBA's delivery path assumes polite traffic; at the ROADMAP's
million-user scale, alert storms, duplicate submissions and per-channel
provider limits are the common case.  This module is the admission layer
that keeps the pipeline dependable under that load:

- :class:`TokenBucket` rate limiters at three scopes — per-channel,
  per-recipient, global — refilled lazily from simulation time;
- :class:`DedupStore`: a bounded-LRU idempotency store keyed by
  ``alert_id:channel:recipient:time_bucket``, so replays and fallback
  copies of an already-delivered alert are suppressed, not re-sent, in
  O(1) memory per retained key instead of an unbounded routed-id set;
- :class:`BackoffPolicy` + :class:`DeadLetterQueue`: bounded per-alert
  retry budgets with exponential backoff and deterministic jitter,
  replacing the fixed-delay retry loop that would otherwise hammer a
  persistently-down channel forever;
- :class:`LoadShedder`: storm-mode detection on arrival rate and inbox
  depth, shedding or coalescing low-priority alerts — every shed is
  journalled as an explicit outcome, never a silent drop.

Everything is deterministic: jitter draws come from a dedicated
:mod:`repro.sim.rng` stream (``admission-<user>``), so enabling admission
never perturbs any existing stream, and a permissive
:meth:`AdmissionConfig.permissive` config is provably a no-op (covered by
the golden byte-identity tests).

One :class:`AdmissionController` lives on the *persistent*
:class:`~repro.core.buddy.BuddyConfig`, not on an incarnation, so retry
budgets and dedup keys survive MAB crashes and MDC restarts — a crash
must not refill an alert's retry budget.
"""

from __future__ import annotations

from collections import Counter, OrderedDict, deque
from dataclasses import dataclass, fields
from typing import Optional

from repro.sim.rng import RngRegistry

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BackoffPolicy",
    "DeadLetter",
    "DeadLetterQueue",
    "DedupStore",
    "LoadShedder",
    "TokenBucket",
    "dedup_key",
]


# ----------------------------------------------------------------------
# Token buckets
# ----------------------------------------------------------------------


class TokenBucket:
    """Classic token bucket refilled lazily from simulation time.

    ``rate`` tokens accrue per second up to ``burst``; a grant consumes
    one token.  Grant timestamps are retained (bounded) so the delivery
    oracle can audit the fairness invariant after the fact: the number of
    grants inside *any* window ``W`` never exceeds ``burst + rate * W``.
    """

    #: Grant-log bound: enough for any test-scale run to audit exactly.
    MAX_GRANT_LOG = 65536

    __slots__ = ("name", "rate", "burst", "tokens", "updated_at", "grants",
                 "granted_total", "rejected_total")

    def __init__(self, rate: float, burst: float, name: str = "bucket"):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.name = name
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated_at = 0.0
        self.grants: deque[float] = deque(maxlen=self.MAX_GRANT_LOG)
        self.granted_total = 0
        self.rejected_total = 0

    def _refill(self, now: float) -> None:
        if now > self.updated_at:
            self.tokens = min(
                self.burst, self.tokens + (now - self.updated_at) * self.rate
            )
            self.updated_at = now

    def available(self, now: float) -> float:
        self._refill(now)
        return self.tokens

    def wait_time(self, now: float) -> float:
        """Seconds from ``now`` until one token is available (0.0 if one
        is available already).

        ``updated_at`` may sit *ahead* of ``now`` when a reservation has
        committed a future-dated token via :meth:`take_at`; the next
        token then arrives relative to that commit time, not ``now`` —
        ignoring the gap would let back-to-back reservations under-wait
        and break the fairness bound.
        """
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (self.updated_at - now) + (1.0 - self.tokens) / self.rate

    def try_take(self, now: float) -> bool:
        """Take one token immediately, or reject without waiting."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self._record_grant(now)
            return True
        self.rejected_total += 1
        return False

    def take_at(self, at: float) -> None:
        """Commit a token at future time ``at`` (reserved by the caller,
        which computed ``at >= now + wait_time(now)`` across scopes)."""
        self._refill(at)
        self.tokens -= 1.0
        self._record_grant(at)

    def _record_grant(self, at: float) -> None:
        self.grants.append(at)
        self.granted_total += 1


# ----------------------------------------------------------------------
# Dedup store
# ----------------------------------------------------------------------


def dedup_key(alert_id: str, channel: str, recipient: str,
              created_at: float, window: float) -> str:
    """``alert_id:channel:recipient:time_bucket`` idempotency key."""
    bucket = int(created_at // window) if window > 0 else 0
    return f"{alert_id}:{channel}:{recipient}:{bucket}"


class DedupStore:
    """Bounded LRU set of delivery dedup keys.

    Keys are *marked* when a delivery reaches a terminal accounted
    outcome, and *checked* when a new copy arrives — a hit means the copy
    is suppressed.  The LRU bound gives O(``max_entries``) memory however
    long the run; ``ever_marked`` (audit only) retains every key so the
    oracle can prove each suppression matched a real prior delivery.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries!r}")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, float] = OrderedDict()
        #: Audit trail for the no-duplicate-past-dedup invariant.
        self.ever_marked: set[str] = set()
        self.suppressed: list[tuple[str, float]] = []
        self.evicted_total = 0
        self.marked_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def mark(self, key: str, at: float) -> None:
        """Record ``key`` as delivered; evicts the LRU key at the bound."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = at
            return
        self._entries[key] = at
        self.ever_marked.add(key)
        self.marked_total += 1
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evicted_total += 1

    def check(self, key: str, at: float) -> bool:
        """True (and logged as a suppression) when ``key`` is marked."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.suppressed.append((key, at))
            return True
        return False

    @property
    def suppressed_total(self) -> int:
        return len(self.suppressed)


# ----------------------------------------------------------------------
# Backoff + dead letters
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with bounded multiplicative jitter.

    The deterministic schedule ``base * factor**attempt`` is monotone
    nondecreasing; jitter scales each delay by a factor drawn uniformly
    from ``[1 - jitter, 1 + jitter]``, and the result is clamped to
    ``max_delay`` — so every delay is bounded regardless of attempt.
    """

    base: float = 30.0
    factor: float = 2.0
    max_delay: float = 900.0
    jitter: float = 0.1

    def raw_delay(self, attempt: int) -> float:
        """The jitter-free schedule (monotone, capped at ``max_delay``)."""
        return min(self.base * self.factor ** attempt, self.max_delay)

    def delay_for(self, attempt: int, rng=None) -> float:
        delay = self.base * self.factor ** attempt
        if rng is not None and self.jitter > 0:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return min(delay, self.max_delay)


@dataclass
class DeadLetter:
    """One poisoned alert parked for operator attention."""

    alert_id: str
    user: str
    reason: str
    at: float
    attempts: int


class DeadLetterQueue:
    """Terminal parking lot for alerts whose retry budget is exhausted.

    Nothing here is retried automatically — that is the point: a
    persistently-failing alert stops consuming delivery capacity, and the
    journal records ``dead_lettered`` so the oracle can account for it.
    """

    def __init__(self):
        self.entries: list[DeadLetter] = []
        self._by_alert: dict[str, DeadLetter] = {}

    def add(self, letter: DeadLetter) -> None:
        self.entries.append(letter)
        self._by_alert[letter.alert_id] = letter

    def get(self, alert_id: str) -> Optional[DeadLetter]:
        return self._by_alert.get(alert_id)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, alert_id: str) -> bool:
        return alert_id in self._by_alert


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------


class LoadShedder:
    """Storm-mode detector on a sliding arrival-rate window + queue depth.

    Pure bookkeeping — the *decision* to shed a given alert also depends
    on its severity and is made by the controller, so this object stays
    independently property-testable.
    """

    def __init__(self, window: float, rate_threshold: Optional[float],
                 depth_threshold: Optional[int]):
        self.window = window
        self.rate_threshold = rate_threshold
        self.depth_threshold = depth_threshold
        self._arrivals: deque[float] = deque()
        self.storm_entries = 0
        self._in_storm = False

    def record_arrival(self, now: float) -> None:
        self._arrivals.append(now)
        cutoff = now - self.window
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()

    def arrival_rate(self, now: float) -> float:
        cutoff = now - self.window
        while self._arrivals and self._arrivals[0] < cutoff:
            self._arrivals.popleft()
        return len(self._arrivals) / self.window

    def storm_active(self, now: float, queue_depth: int) -> bool:
        active = False
        if self.rate_threshold is not None:
            active = self.arrival_rate(now) >= self.rate_threshold
        if not active and self.depth_threshold is not None:
            active = queue_depth >= self.depth_threshold
        if active and not self._in_storm:
            self.storm_entries += 1
        self._in_storm = active
        return active


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionConfig:
    """Scalar-only admission knobs (JSON round-trips through reproducers).

    Every limit defaults to *off* (``None``); :meth:`permissive` is the
    explicit everything-off config used by the byte-identity regression
    tests, :meth:`hardened` the storm-ready default used by E12.
    """

    #: Seed for the jitter stream (mixed per-user via RngRegistry).
    seed: int = 0
    # Rate limits (tokens/second; None disables the scope).
    global_rate: Optional[float] = None
    global_burst: float = 10.0
    recipient_rate: Optional[float] = None
    recipient_burst: float = 4.0
    channel_rate: Optional[float] = None
    channel_burst: float = 8.0
    #: Longest a throttled alert will wait for tokens before being shed.
    max_throttle_delay: float = 120.0
    # Dedup (None disables).
    dedup_window: Optional[float] = None
    dedup_entries: int = 4096
    # Retry budget + backoff (None budget keeps the legacy attempt cap;
    # None backoff_base keeps the legacy fixed retry delay).
    retry_budget: Optional[int] = None
    backoff_base: Optional[float] = None
    backoff_factor: float = 2.0
    backoff_max: float = 900.0
    backoff_jitter: float = 0.1
    # Storm-mode shedding (both thresholds None disables).
    storm_window: float = 60.0
    storm_rate: Optional[float] = None
    storm_depth: Optional[int] = None
    #: Severities eligible for shedding/coalescing under storm mode.
    shed_severities: tuple = ("routine",)
    #: Coalesce window for same-(user, keyword) routine alerts in a storm.
    coalesce_window: Optional[float] = None

    @classmethod
    def permissive(cls, seed: int = 0) -> "AdmissionConfig":
        """Everything off: provably zero behavior change."""
        return cls(seed=seed)

    @classmethod
    def hardened(cls, seed: int = 0) -> "AdmissionConfig":
        """Storm-ready defaults used by E12 and the storm chaos tier."""
        return cls(
            seed=seed,
            global_rate=2.0,
            global_burst=10.0,
            recipient_rate=0.5,
            recipient_burst=4.0,
            channel_rate=1.0,
            channel_burst=8.0,
            max_throttle_delay=120.0,
            dedup_window=3600.0,
            dedup_entries=4096,
            retry_budget=3,
            backoff_base=30.0,
            backoff_factor=2.0,
            backoff_max=600.0,
            backoff_jitter=0.1,
            storm_window=60.0,
            storm_rate=0.5,
            storm_depth=8,
            coalesce_window=120.0,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "AdmissionConfig":
        """Rebuild from a JSON dict (reproducer replay); unknown keys are
        dropped and list-valued fields become tuples."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if isinstance(kwargs.get("shed_severities"), list):
            kwargs["shed_severities"] = tuple(kwargs["shed_severities"])
        return cls(**kwargs)

    @property
    def any_enabled(self) -> bool:
        return any((
            self.global_rate is not None,
            self.recipient_rate is not None,
            self.channel_rate is not None,
            self.dedup_window is not None,
            self.retry_budget is not None,
            self.backoff_base is not None,
            self.storm_rate is not None,
            self.storm_depth is not None,
        ))


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------


@dataclass
class ShedDecision:
    """Why an alert was (not) shed — annotated onto the trace span."""

    action: str  # "admit" | "shed" | "coalesce"
    reason: str = ""
    coalesced_into: Optional[str] = None


class AdmissionController:
    """One endpoint's admission state: buckets, dedup, budgets, DLQ.

    The controller is sim-time-driven but env-free: every method takes
    ``now`` explicitly, so it can be owned by persistent config objects
    that outlive kernels and incarnations.
    """

    def __init__(self, config: AdmissionConfig, owner: str):
        self.config = config
        self.owner = owner
        #: Deterministic jitter stream — a *named* stream, so enabling
        #: admission never perturbs any pre-existing RNG stream.
        self.rng = RngRegistry(seed=config.seed).stream(f"admission-{owner}")
        self.backoff = BackoffPolicy(
            base=config.backoff_base if config.backoff_base is not None else 30.0,
            factor=config.backoff_factor,
            max_delay=config.backoff_max,
            jitter=config.backoff_jitter,
        )
        self.global_bucket: Optional[TokenBucket] = (
            TokenBucket(config.global_rate, config.global_burst, "global")
            if config.global_rate is not None else None
        )
        self.recipient_buckets: dict[str, TokenBucket] = {}
        self.channel_buckets: dict[str, TokenBucket] = {}
        self.dedup: Optional[DedupStore] = (
            DedupStore(config.dedup_entries)
            if config.dedup_window is not None else None
        )
        self.dead_letters = DeadLetterQueue()
        self.shedder: Optional[LoadShedder] = (
            LoadShedder(config.storm_window, config.storm_rate,
                        config.storm_depth)
            if (config.storm_rate is not None
                or config.storm_depth is not None) else None
        )
        self._shed_severities = frozenset(config.shed_severities)
        #: Remaining retry budget per alert; bounded LRU like the dedup
        #: store so storm-length runs cannot grow it without bound.
        self._retry_budgets: OrderedDict[str, int] = OrderedDict()
        #: Last admitted (at, alert_id) per coalesce key.
        self._coalesce: OrderedDict[str, tuple[float, str]] = OrderedDict()
        # Shed accounting, audited by the every-shed-is-journalled
        # invariant against the journal's per-kind counts.
        self.shed_counts: Counter[str] = Counter()
        self.throttle_waits = 0

    # -- rate limiting -------------------------------------------------

    def _recipient_bucket(self, recipient: str) -> Optional[TokenBucket]:
        if self.config.recipient_rate is None:
            return None
        bucket = self.recipient_buckets.get(recipient)
        if bucket is None:
            bucket = TokenBucket(
                self.config.recipient_rate, self.config.recipient_burst,
                f"recipient:{recipient}",
            )
            self.recipient_buckets[recipient] = bucket
        return bucket

    def channel_bucket(self, channel: str) -> Optional[TokenBucket]:
        if self.config.channel_rate is None:
            return None
        bucket = self.channel_buckets.get(channel)
        if bucket is None:
            bucket = TokenBucket(
                self.config.channel_rate, self.config.channel_burst,
                f"channel:{channel}",
            )
            self.channel_buckets[channel] = bucket
        return bucket

    def reserve_route(self, now: float, recipient: str) -> Optional[float]:
        """Reserve global + per-recipient tokens for one routing pass.

        Returns the wait (seconds, possibly 0.0) before the pass may
        proceed, committing tokens at ``now + wait`` in every scope — or
        ``None`` (nothing committed) when the wait would exceed
        ``max_throttle_delay``, in which case the alert is rate-limited.
        """
        buckets = []
        if self.global_bucket is not None:
            buckets.append(self.global_bucket)
        recipient_bucket = self._recipient_bucket(recipient)
        if recipient_bucket is not None:
            buckets.append(recipient_bucket)
        if not buckets:
            return 0.0
        wait = max(bucket.wait_time(now) for bucket in buckets)
        if wait > self.config.max_throttle_delay:
            for bucket in buckets:
                bucket.rejected_total += 1
            return None
        at = now + wait
        for bucket in buckets:
            bucket.take_at(at)
        if wait > 0:
            self.throttle_waits += 1
        return wait

    def try_submit(self, now: float, channel: str) -> bool:
        """Per-channel provider limit consulted at submission time."""
        bucket = self.channel_bucket(channel)
        if bucket is None:
            return True
        return bucket.try_take(now)

    def all_buckets(self) -> list[TokenBucket]:
        buckets = []
        if self.global_bucket is not None:
            buckets.append(self.global_bucket)
        buckets.extend(self.recipient_buckets.values())
        buckets.extend(self.channel_buckets.values())
        return buckets

    # -- dedup ---------------------------------------------------------

    def dedup_key_for(self, alert_id: str, channel: str,
                      created_at: float) -> Optional[str]:
        if self.dedup is None:
            return None
        return dedup_key(alert_id, channel, self.owner, created_at,
                         self.config.dedup_window)

    def dedup_check(self, alert_id: str, channel: str, created_at: float,
                    now: float) -> Optional[str]:
        """The suppressed key when this copy is a duplicate, else None."""
        key = self.dedup_key_for(alert_id, channel, created_at)
        if key is not None and self.dedup.check(key, now):
            return key
        return None

    def dedup_mark(self, alert_id: str, created_at: float,
                   now: float) -> None:
        """Mark delivery terminal: later copies past this key suppress."""
        if self.dedup is None:
            return
        # Mark the key for *every* channel a copy could arrive by: the
        # sender's fallback copy of an IM-delivered alert arrives by email.
        for via in ("IM", "EM", "SMS"):
            self.dedup.mark(
                dedup_key(alert_id, via, self.owner, created_at,
                          self.config.dedup_window),
                now,
            )

    # -- retry budget + dead letters ------------------------------------

    def take_retry_token(self, alert_id: str) -> bool:
        """Consume one retry from the alert's budget (True = may retry)."""
        if self.config.retry_budget is None:
            return True
        remaining = self._retry_budgets.get(alert_id)
        if remaining is None:
            remaining = self.config.retry_budget
        if remaining <= 0:
            return False
        self._retry_budgets[alert_id] = remaining - 1
        self._retry_budgets.move_to_end(alert_id)
        while len(self._retry_budgets) > 65536:
            self._retry_budgets.popitem(last=False)
        return True

    def retry_delay(self, attempt: int, fallback: float) -> float:
        """Backoff delay for retry ``attempt`` (legacy fixed delay when
        backoff is not configured)."""
        if self.config.backoff_base is None:
            return fallback
        return self.backoff.delay_for(attempt, self.rng)

    def dead_letter(self, alert_id: str, reason: str, at: float,
                    attempts: int) -> DeadLetter:
        letter = DeadLetter(
            alert_id=alert_id, user=self.owner, reason=reason, at=at,
            attempts=attempts,
        )
        self.dead_letters.add(letter)
        return letter

    # -- storm shedding ------------------------------------------------

    def admit(self, now: float, alert_id: str, keyword: str, severity: str,
              queue_depth: int) -> ShedDecision:
        """Storm-mode admit/shed/coalesce decision for one arrival."""
        if self.shedder is None:
            return ShedDecision("admit")
        self.shedder.record_arrival(now)
        if not self.shedder.storm_active(now, queue_depth):
            return ShedDecision("admit")
        if severity not in self._shed_severities:
            return ShedDecision("admit", reason="storm: severity exempt")
        window = self.config.coalesce_window
        if window is not None:
            ckey = f"{self.owner}:{keyword}"
            previous = self._coalesce.get(ckey)
            if previous is not None and now - previous[0] <= window:
                self.shed_counts["coalesced"] += 1
                return ShedDecision(
                    "coalesce",
                    reason=f"storm: within {window:.0f}s of {previous[1]}",
                    coalesced_into=previous[1],
                )
            self._coalesce[ckey] = (now, alert_id)
            self._coalesce.move_to_end(ckey)
            while len(self._coalesce) > 65536:
                self._coalesce.popitem(last=False)
            return ShedDecision("admit", reason="storm: coalesce anchor")
        self.shed_counts["shed"] += 1
        return ShedDecision("shed", reason="storm: low-priority drop")

    def count_shed(self, kind: str) -> None:
        """Attribute a shed decided outside :meth:`admit` (rate limiting)."""
        self.shed_counts[kind] += 1

    # -- rollup ---------------------------------------------------------

    def summary(self) -> dict:
        return {
            "owner": self.owner,
            "shed": self.shed_counts.get("shed", 0),
            "coalesced": self.shed_counts.get("coalesced", 0),
            "rate_limited": self.shed_counts.get("rate_limited", 0),
            "dedup_suppressed": (
                self.dedup.suppressed_total if self.dedup is not None else 0
            ),
            "dedup_evicted": (
                self.dedup.evicted_total if self.dedup is not None else 0
            ),
            "dead_letters": len(self.dead_letters),
            "throttle_waits": self.throttle_waits,
            "submissions_rejected": sum(
                b.rejected_total for b in self.channel_buckets.values()
            ),
            "storm_entries": (
                self.shedder.storm_entries if self.shedder is not None else 0
            ),
        }


def build_controller(config: Optional[AdmissionConfig],
                     owner: str) -> Optional[AdmissionController]:
    """Controller for ``owner``, or None when admission is unconfigured."""
    if config is None:
        return None
    return AdmissionController(config, owner)
