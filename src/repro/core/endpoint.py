"""SIMBA library runtime: one communicating endpoint.

Both MyAlertBuddy and the alert sources link the SIMBA library (§4.2 "we
modified the ... alert sources ... to use the 'IM-with-acknowledgement
followed by email' delivery mode of the SIMBA library").  An endpoint owns:

- an IM identity + GUI IM client + IM Manager,
- an email identity + GUI email client + Email Manager,
- an SMS manager (gateway-facing),
- a :class:`~repro.core.router.DeliveryEngine` for outgoing alerts,
- receive loops that separate application-level acknowledgements
  (``SIMBA-ACK <seq>``) from alert payloads and plain messages.

Incoming alerts are optionally acknowledged (``auto_ack``) after an optional
``pre_ack_hook`` runs — MyAlertBuddy hooks its pessimistic log there, which
is exactly the paper's log-before-ack ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

from repro.clients.email_client import EmailClient
from repro.clients.im_client import IMClient
from repro.clients.screen import Screen
from repro.core.addresses import AddressBook
from repro.core.alert import Alert
from repro.core.delivery_modes import DeliveryMode
from repro.core.managers import EmailManager, IMManager, SMSManager
from repro.core.router import DeliveryEngine
from repro.errors import AutomationError, ChannelError
from repro.net.email import EmailService
from repro.net.im import IMService
from repro.net.message import ChannelType, Message
from repro.net.sms import SMSGateway
from repro.sim.stores import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

ACK_PREFIX = "SIMBA-ACK"

#: How long a receive loop sleeps after an automation error before retrying
#: (the sanity checks / monkey threads repair the client in the meantime).
RECEIVE_RETRY_DELAY = 2.0


@dataclass
class IncomingAlert:
    """An alert as it arrived at this endpoint."""

    alert: Alert
    via: ChannelType
    sender: str
    received_at: float
    #: IM sequence number when it arrived by IM (for ack bookkeeping).
    seq: Optional[int] = None
    #: Delivery-retry bookkeeping (set by MyAlertBuddy when a routing pass
    #: failed for every block and the alert is re-queued).
    attempts: int = 0
    #: When retrying, only these subscribers still need delivery.
    retry_users: Optional[frozenset[str]] = None
    #: Tracing only: span id the next pipeline trip should parent under
    #: (the receive span, a retry's trip, a failover handoff...).
    trace_parent: Optional[int] = None


def make_ack_body(seq: int, epoch: Optional[int] = None) -> str:
    """``SIMBA-ACK <seq>``, optionally stamped with the acking side's
    fencing epoch (``SIMBA-ACK <seq> epoch=<n>``) so a replicated pair's
    acks are attributable in forensics."""
    if epoch is None:
        return f"{ACK_PREFIX} {seq}"
    return f"{ACK_PREFIX} {seq} epoch={epoch}"


def parse_ack_body(body: str) -> Optional[int]:
    """Return the acknowledged seq, or None if ``body`` is not an ack."""
    if not body.startswith(ACK_PREFIX):
        return None
    fields = body[len(ACK_PREFIX):].split()
    if not fields:
        return None
    try:
        return int(fields[0])
    except ValueError:
        return None


def parse_ack_epoch(body: str) -> Optional[int]:
    """The fencing epoch stamped into an ack, if any."""
    for token in body.split():
        if token.startswith("epoch="):
            try:
                return int(token[len("epoch="):])
            except ValueError:
                return None
    return None


class SimbaEndpoint:
    """One SIMBA-library node with IM + email + SMS capability."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        screen: Screen,
        im_service: IMService,
        email_service: EmailService,
        sms_gateway: SMSGateway,
        im_address: str,
        email_address: str,
        auto_ack: bool = True,
        pre_ack_hook: Optional[
            Callable[[IncomingAlert], Generator]
        ] = None,
        command_handler: Optional[Callable[[Message], None]] = None,
        maintenance_interval: Optional[float] = None,
    ):
        self.env = env
        self.name = name
        self.im_address = im_address
        self.email_address = email_address
        self.auto_ack = auto_ack
        self.pre_ack_hook = pre_ack_hook
        self.command_handler = command_handler
        #: Replication fencing hook: called with the IncomingAlert after the
        #: pre-ack log write; returning False suppresses both the ack and
        #: the enqueue (a fenced side must go silent, not double-route).
        self.ack_guard: Optional[Callable[[IncomingAlert], bool]] = None
        #: When set, outgoing acks are stamped with this fencing epoch.
        self.epoch_provider: Optional[Callable[[], int]] = None

        im_service.register_account(im_address)
        self.im_client = IMClient(
            env, screen, im_service, im_address, name=f"{name}-im-client"
        )
        self.email_client = EmailClient(
            env, screen, email_service, email_address, name=f"{name}-email-client"
        )
        self.im_manager = IMManager(env, self.im_client)
        self.email_manager = EmailManager(env, self.email_client)
        self.sms_manager = SMSManager(env, sms_gateway)
        self.engine = DeliveryEngine(
            env,
            {
                ChannelType.IM: self.im_manager,
                ChannelType.EMAIL: self.email_manager,
                ChannelType.SMS: self.sms_manager,
            },
        )
        #: Decoded alerts awaiting the application (MAB's routing loop).
        self.alert_inbox: Store = Store(env)
        #: Messages dropped at receive because the channel flagged them
        #: corrupt (failed checksum).  Never acked, never parsed: a corrupt
        #: alert behaves like a lost one, so the sender's fallback fires.
        self.corrupt_discarded = 0
        self.running = False
        self._generation = 0
        #: Ablation switch: whether start() launches the monkey threads.
        self.monkey_enabled = True
        #: When set, start() runs the managers' sanity checks on this period.
        #: MyAlertBuddy leaves it None (its self-stabilizer owns the checks);
        #: standalone sources set it so they too recover from logouts/hangs.
        self.maintenance_interval = maintenance_interval

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start clients, monkey threads and receive loops (idempotent)."""
        if self.running:
            return
        self.running = True
        self._generation += 1
        self.im_manager.ensure_started()
        self.email_manager.ensure_started()
        if self.monkey_enabled:
            self.im_manager.monkey.start()
            self.email_manager.monkey.start()
        generation = self._generation
        self.env.process(self._im_loop(generation), name=f"{self.name}-im-loop")
        self.env.process(
            self._email_loop(generation), name=f"{self.name}-email-loop"
        )
        if self.maintenance_interval is not None:
            self.env.process(
                self._maintenance_loop(generation),
                name=f"{self.name}-maintenance",
            )

    def _maintenance_loop(self, generation: int):
        """Library-side self-maintenance for endpoints without a stabilizer."""
        while self.running and self._generation == generation:
            yield self.env.timeout(self.maintenance_interval)
            if not self.running or self._generation != generation:
                return
            self.im_manager.sanity_check()
            self.email_manager.sanity_check()

    def stop(self, shutdown_clients: bool = False) -> None:
        """Stop loops; optionally also shut the client software down."""
        self.running = False
        self.im_manager.monkey.stop()
        self.email_manager.monkey.stop()
        if shutdown_clients:
            self.im_manager.shutdown()
            self.email_manager.shutdown()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def deliver_alert(
        self,
        alert: Alert,
        mode: DeliveryMode,
        book: AddressBook,
        trace_parent: Optional[int] = None,
    ):
        """Deliver ``alert`` per ``mode`` (generator returning the outcome)."""
        outcome = yield from self.engine.execute(
            mode,
            book,
            subject=alert.subject,
            body=alert.encode(),
            correlation=alert.alert_id,
            trace_parent=trace_parent,
        )
        return outcome

    def deliver_alert_process(
        self, alert: Alert, mode: DeliveryMode, book: AddressBook
    ):
        """Fire-and-track: run delivery as its own process."""
        return self.env.process(
            self.deliver_alert(alert, mode, book),
            name=f"{self.name}-deliver-{alert.alert_id}",
        )

    # ------------------------------------------------------------------
    # Receive loops
    # ------------------------------------------------------------------

    def _im_loop(self, generation: int):
        """Pump IMs: route acks to the engine, alerts to the inbox."""
        while self.running and self._generation == generation:
            message = yield self.im_client.incoming.get()
            if not self.running or self._generation != generation:
                # This loop is stale (endpoint stopped or restarted): the
                # message belongs to the client's queue, not to us — put it
                # back for whoever runs next.
                self.im_client.incoming.put_front(message)
                return
            if message.corrupt:
                self.corrupt_discarded += 1
                continue
            seq = parse_ack_body(message.body)
            if seq is not None:
                self.engine.acks.resolve(message.sender, seq)
                continue
            if Alert.is_alert_payload(message.body):
                yield from self._handle_alert(
                    message.body,
                    via=ChannelType.IM,
                    sender=message.sender,
                    seq=message.seq,
                    trace_parent=message.trace_parent,
                )
                continue
            if self.command_handler is not None:
                self.command_handler(message)

    def _email_loop(self, generation: int):
        """Pump emails; alerts to the inbox, the rest to the command hook."""
        while self.running and self._generation == generation:
            try:
                message = yield self.email_client.fetch_next(
                    self.email_manager.handle
                )
            except (AutomationError, ChannelError):
                yield self.env.timeout(RECEIVE_RETRY_DELAY)
                continue
            if not self.running or self._generation != generation:
                self.email_client.service.mailbox(
                    self.email_address
                ).put_back(message)
                return
            if message.corrupt:
                self.corrupt_discarded += 1
                continue
            if Alert.is_alert_payload(message.body):
                yield from self._handle_alert(
                    message.body,
                    via=ChannelType.EMAIL,
                    sender=message.sender,
                    trace_parent=message.trace_parent,
                )
                continue
            if self.command_handler is not None:
                self.command_handler(message)

    def _handle_alert(
        self,
        payload: str,
        via: ChannelType,
        sender: str,
        seq: Optional[int] = None,
        trace_parent: Optional[int] = None,
    ):
        try:
            alert = Alert.decode(payload)
        except ValueError:
            return
        incoming = IncomingAlert(
            alert=alert, via=via, sender=sender, received_at=self.env.now, seq=seq
        )
        tracer = self.env.tracer
        rspan = None
        if tracer is not None:
            rspan = tracer.begin(
                alert.alert_id,
                "receive",
                parent=trace_parent,
                via=via.value,
                endpoint=self.name,
            )
            if seq is not None:
                rspan.annotations["seq"] = seq
            incoming.trace_parent = rspan.span_id
        if self.pre_ack_hook is not None:
            yield from self.pre_ack_hook(incoming)
        if self.ack_guard is not None and not self.ack_guard(incoming):
            # Fenced: no ack (the sender falls back and the active side
            # receives the copy) and no enqueue.  The pre-ack log write
            # above stays local and is handed over by reconciliation.
            if rspan is not None:
                tracer.end(rspan, "fenced")
            return
        if self.auto_ack and via is ChannelType.IM and seq is not None:
            epoch = (
                self.epoch_provider()
                if self.epoch_provider is not None
                else None
            )
            try:
                ack_message = self.im_manager.submit(
                    sender,
                    "",
                    make_ack_body(seq, epoch),
                    correlation=alert.alert_id,
                )
                if rspan is not None:
                    # The ack's transit span parents under the receive.
                    ack_message.trace_parent = rspan.span_id
            except (AutomationError, ChannelError):
                # Could not ack: the sender will fall back to email and the
                # alert may arrive twice; incoming dedup handles that.
                if rspan is not None:
                    rspan.annotations["ack_failed"] = True
        yield self.alert_inbox.put(incoming)
        if rspan is not None:
            tracer.end(rspan, "enqueued")
