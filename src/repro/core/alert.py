"""Alerts: the unit of information SIMBA delivers.

"Alerts refer to the delivery of user-subscribed information to the user"
(abstract).  An alert is born at a source with a *native keyword* (the
category-bearing token the source embeds in its sender name or subject —
§4.2 "Alert classification"), flows to MyAlertBuddy, is re-classified into a
*personal category*, and is finally routed to user addresses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional


class AlertSeverity(enum.Enum):
    """Coarse importance used by sources and workload generators.

    SIMBA itself routes on *categories*, not severities — severity only
    determines which category a source emits under (e.g. Aladdin declares
    some sensors "critical") and lets benches report per-class results.
    """

    ROUTINE = "routine"
    IMPORTANT = "important"
    CRITICAL = "critical"


_alert_counter = itertools.count(1)


def _next_alert_id() -> str:
    return f"alert-{next(_alert_counter)}"


@dataclass
class Alert:
    """One alert instance.

    ``alert_id`` plus ``created_at`` is the duplicate-detection key the paper
    prescribes ("we use timestamps to allow the user to detect and discard
    duplicates", §4.2.1).
    """

    source: str
    keyword: str
    subject: str
    body: str
    created_at: float
    severity: AlertSeverity = AlertSeverity.ROUTINE
    #: Where the keyword is embedded when the alert travels as email —
    #: some services put it in the sender name, others in the subject (§4.2).
    keyword_field: str = "subject"
    alert_id: str = field(default_factory=_next_alert_id)
    #: Set by MAB's aggregator once the alert is classified.
    personal_category: Optional[str] = None
    extra: dict[str, Any] = field(default_factory=dict)

    def with_category(self, category: str) -> "Alert":
        """Copy of this alert tagged with its personal category."""
        return replace(self, personal_category=category)

    # ------------------------------------------------------------------
    # Wire encoding
    # ------------------------------------------------------------------
    # Alerts travel between SIMBA nodes as plain message bodies; the fields
    # below round-trip the ones MAB needs for classification and duplicate
    # detection.  A versioned key=value header block keeps this both simple
    # and forward-extensible.

    _WIRE_PREFIX = "SIMBA-ALERT/1"

    @staticmethod
    def _escape(value: str) -> str:
        """Make a header value newline-safe (body text needs no escaping)."""
        return (
            value.replace("\\", "\\\\").replace("\n", "\\n").replace("\r", "\\r")
        )

    @staticmethod
    def _unescape(value: str) -> str:
        out: list[str] = []
        it = iter(value)
        for char in it:
            if char != "\\":
                out.append(char)
                continue
            escaped = next(it, "")
            out.append({"n": "\n", "r": "\r", "\\": "\\"}.get(escaped, escaped))
        return "".join(out)

    def encode(self) -> str:
        """Serialize for transport as an IM/email body."""
        header = "\n".join(
            [
                self._WIRE_PREFIX,
                f"id={self._escape(self.alert_id)}",
                f"source={self._escape(self.source)}",
                f"keyword={self._escape(self.keyword)}",
                f"keyword_field={self.keyword_field}",
                f"severity={self.severity.value}",
                f"created_at={self.created_at!r}",
                f"subject={self._escape(self.subject)}",
            ]
        )
        return f"{header}\n\n{self.body}"

    @classmethod
    def decode(cls, text: str) -> "Alert":
        """Parse an alert from its wire form.  Raises ValueError if not one."""
        if not text.startswith(cls._WIRE_PREFIX):
            raise ValueError("not a SIMBA alert payload")
        head, _sep, body = text.partition("\n\n")
        fields: dict[str, str] = {}
        for line in head.split("\n")[1:]:
            key, _eq, value = line.partition("=")
            fields[key] = cls._unescape(value)
        try:
            return cls(
                source=fields["source"],
                keyword=fields["keyword"],
                subject=fields["subject"],
                body=body,
                created_at=float(fields["created_at"]),
                severity=AlertSeverity(fields["severity"]),
                keyword_field=fields["keyword_field"],
                alert_id=fields["id"],
            )
        except KeyError as exc:
            raise ValueError(f"alert payload missing field {exc}") from exc

    @classmethod
    def is_alert_payload(cls, text: str) -> bool:
        return text.startswith(cls._WIRE_PREFIX)

    def duplicate_key(self) -> tuple[str, float]:
        """Key under which the user endpoint deduplicates deliveries."""
        return (self.alert_id, self.created_at)
