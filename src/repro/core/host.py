"""The machine MyAlertBuddy runs on.

"Currently, MyAlertBuddy runs on a desktop PC owned by the user" (§4).  The
host owns the screen (dialog boxes live per machine), can lose power (the
paper's one unrecovered outage — "UPS ... [was] then used to fix the
problem"), and can be rebooted by the MDC when restarts alone do not help.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.clients.screen import Screen

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment

DEFAULT_BOOT_DELAY = 90.0


@dataclass
class PowerEvent:
    """Audit record of one power incident."""

    at: float
    duration: float
    survived_on_ups: bool


class Host:
    """A failable machine: power state, screen, shutdown/boot hooks."""

    def __init__(
        self,
        env: "Environment",
        name: str = "desktop",
        has_ups: bool = False,
        boot_delay: float = DEFAULT_BOOT_DELAY,
    ):
        self.env = env
        self.name = name
        self.has_ups = has_ups
        self.boot_delay = boot_delay
        self.screen = Screen(env)
        self.powered = True
        self.booted = True
        #: Called (in registration order) when the machine goes down.
        self._shutdown_hooks: list[Callable[[], None]] = []
        #: Called when the machine comes back up.
        self._boot_hooks: list[Callable[[], None]] = []
        self.power_events: list[PowerEvent] = []
        self.reboots = 0

    def on_shutdown(self, hook: Callable[[], None]) -> None:
        self._shutdown_hooks.append(hook)

    def on_boot(self, hook: Callable[[], None]) -> None:
        self._boot_hooks.append(hook)

    @property
    def up(self) -> bool:
        return self.powered and self.booted

    # ------------------------------------------------------------------
    # Failure / recovery actions
    # ------------------------------------------------------------------

    def power_failure(self, duration: float) -> bool:
        """Power loss for ``duration`` seconds.

        With a UPS the machine rides it out (returns False: fault did not
        bite).  Without one, everything dies instantly and the machine boots
        ``boot_delay`` after power returns.
        """
        if duration <= 0:
            raise ValueError(f"outage duration must be > 0, got {duration!r}")
        if self.has_ups:
            self.power_events.append(PowerEvent(self.env.now, duration, True))
            return False
        self.power_events.append(PowerEvent(self.env.now, duration, False))
        self._go_down()
        self.powered = False
        self.env.process(self._restore_power(duration), name=f"{self.name}-power")
        return True

    def reboot(self) -> None:
        """Orderly reboot (the MDC's last-resort recovery, §4.2.1)."""
        if not self.up:
            return
        self.reboots += 1
        self._go_down()
        self.env.process(self._boot_timer(), name=f"{self.name}-boot")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _go_down(self) -> None:
        self.booted = False
        for hook in self._shutdown_hooks:
            hook()
        # Whatever was on screen dies with the machine.
        for dialog in self.screen.open_dialogs():
            self.screen.click(dialog, dialog.buttons[0])

    def _come_up(self) -> None:
        self.booted = True
        for hook in self._boot_hooks:
            hook()

    def _restore_power(self, duration: float):
        yield self.env.timeout(duration)
        self.powered = True
        yield self.env.timeout(self.boot_delay)
        self._come_up()

    def _boot_timer(self):
        yield self.env.timeout(self.boot_delay)
        self._come_up()
