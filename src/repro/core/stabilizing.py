"""Self-stabilizing exactly-once record transport over an adversarial link.

The replication log-shipping path (:mod:`repro.core.replication`) and the
cross-shard bridge (:mod:`repro.core.shard`) both move records over channels
that — once the adversary is on — reorder, duplicate, and corrupt in flight.
Dolev, Dubois, Potop-Butucaru & Tixeuil show exactly-once delivery over such
non-FIFO channels needs explicit sequencing/acknowledgement machinery that
re-converges after transient faults; this module is that sublayer:

- **Sender** (:class:`StabilizingSender`): per-peer monotone sequence
  numbers, a CRC32 checksum on every frame, and a bounded resend loop that
  retries only when the receiver NACKed an arrived-but-corrupt frame (a
  lost packet is handed back to the caller's queue, exactly as the naive
  path did, so benign-timing stays byte-identical).
- **Receiver** (:class:`StabilizingReceiver`): checksum verification
  (corrupt frames are rejected, never acked) and a bounded dedup window —
  a per-peer monotone high-watermark, complete for stop-and-wait senders —
  so duplicate copies, including clean duplicates that overtake their
  primary, are dropped while still acknowledged.
- **Convergence**: once the last transient fault clears, every queued
  record drains within ``resend_limit`` rounds per record; the audit
  records the worst round count and the drain times so the
  :class:`~repro.testkit.oracle.DeliveryOracle` can assert
  ``convergence_bounded`` and the property tier can bound it per seed.

:class:`NaiveSender`/:class:`NaiveReceiver` form the baseline that E14
ablates against: same framing, but every arriving copy is accepted — so
duplicate-accepts and corrupt-accepts are *counted* where the stabilizing
pair prevents them.

When the adversary is off, both transports add zero RNG draws and zero
extra timeouts on the happy path, keeping pre-change chaos fingerprints and
golden journals byte-identical.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, NamedTuple, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.host import Host
    from repro.sim.link import HostLink

#: How many in-ship resend rounds a sender spends on NACKed frames before
#: handing the record back to the caller's retry machinery.
DEFAULT_RESEND_LIMIT = 4

TRANSPORT_KINDS = ("stabilizing", "naive")


def payload_checksum(payload: Any) -> int:
    """CRC32 over the payload's canonical repr — the frame's integrity tag."""
    return zlib.crc32(repr(payload).encode("utf-8", "backslashreplace"))


class Frame(NamedTuple):
    """One record on the wire: sequence number, payload, integrity tag."""

    seq: int
    payload: Any
    checksum: int


@dataclass
class TransportAudit:
    """Counters for one transport endpoint pair (sender + receiver side)."""

    shipped: int = 0
    acked: int = 0
    resends: int = 0
    give_ups: int = 0
    max_resend_rounds: int = 0
    corrupt_rejected: int = 0
    corrupt_accepted: int = 0
    duplicate_dropped: int = 0
    duplicate_applied: int = 0
    last_drained_at: float = 0.0

    def summary(self) -> dict[str, int]:
        return {
            "shipped": self.shipped,
            "acked": self.acked,
            "resends": self.resends,
            "give_ups": self.give_ups,
            "corrupt_rejected": self.corrupt_rejected,
            "corrupt_accepted": self.corrupt_accepted,
            "duplicate_dropped": self.duplicate_dropped,
            "duplicate_applied": self.duplicate_applied,
        }


class StabilizingReceiver:
    """Checksum verify + per-peer monotone-watermark dedup.

    ``accept`` is called once per arriving copy and returns the ack the
    sender sees: True when the frame is (now or already) safely held, False
    when it was rejected as corrupt.  Application of the payload stays with
    the *sender's* post-ack step, preserving the legacy ship-then-apply
    ordering tick for tick; the receiver's job is to guarantee each record
    is acknowledged fresh exactly once.

    Because every sender is stop-and-wait (one frame outstanding, sequence
    numbers strictly increasing, a re-queued record reships under a fresh
    number), a single per-peer high-watermark is a complete — and O(1), so
    trivially bounded — dedup window: any copy at or below the watermark is
    a duplicate or a superseded straggler, and either way the record it
    carried is covered by a fresher acknowledged frame.  This is the
    self-stabilizing property: whatever transient garbage the channel held,
    one clean round trip per queued record re-converges the pair.
    """

    def __init__(self, audit: Optional[TransportAudit] = None):
        self.audit = audit if audit is not None else TransportAudit()
        #: Highest sequence number seen per peer; everything at or below it
        #: is dropped as a duplicate (but still acknowledged).
        self._watermark: dict[str, int] = {}

    def watermark(self, peer: str) -> int:
        return self._watermark.get(peer, 0)

    def seen(self, peer: str, seq: int) -> bool:
        return seq <= self._watermark.get(peer, 0)

    def accept(
        self, peer: str, frame: Frame, corrupt: bool, duplicate: bool
    ) -> bool:
        if corrupt or frame.checksum != payload_checksum(frame.payload):
            self.audit.corrupt_rejected += 1
            return False
        if self.seen(peer, frame.seq):
            self.audit.duplicate_dropped += 1
            return True
        self._watermark[peer] = frame.seq
        return True


class NaiveReceiver:
    """The baseline: applies every arriving copy, counts the damage."""

    def __init__(
        self,
        audit: Optional[TransportAudit] = None,
        apply: Optional[Callable[[Any], None]] = None,
    ):
        self.audit = audit if audit is not None else TransportAudit()
        self.apply = apply
        self._seen: dict[str, set[int]] = {}

    def converged(self) -> bool:
        return True

    def accept(
        self, peer: str, frame: Frame, corrupt: bool, duplicate: bool
    ) -> bool:
        if corrupt:
            self.audit.corrupt_accepted += 1
        seen = self._seen.setdefault(peer, set())
        if frame.seq in seen:
            self.audit.duplicate_applied += 1
        seen.add(frame.seq)
        if duplicate and self.apply is not None:
            # The primary copy is applied by the sender post-ack; arriving
            # duplicates are applied here, out of band — the double-apply
            # the stabilizing receiver exists to prevent.
            self.apply(frame.payload)
        return True


class StabilizingSender:
    """Monotone-seq framing with a bounded corrupt-NACK resend loop."""

    def __init__(
        self,
        link: "HostLink",
        key: str,
        audit: Optional[TransportAudit] = None,
        resend_limit: int = DEFAULT_RESEND_LIMIT,
    ):
        self.link = link
        self.key = key
        self.audit = audit if audit is not None else TransportAudit()
        self.resend_limit = resend_limit
        self._next_seq = 1

    def ship(self, payload: Any, toward: "Host", rx) -> Any:
        """Generator → bool: frame ``payload`` and move it over the link.

        True means the receiver acknowledged the frame (it will be applied
        exactly once).  False means the link failed (caller requeues, as
        before) or the resend budget ran out on persistent corruption.
        Resends fire only after an arrived-but-NACKed round trip, so a
        benign link sees exactly one ship and zero extra waits.
        """
        frame = Frame(self._next_seq, payload, payload_checksum(payload))
        self._next_seq += 1
        self.audit.shipped += 1
        rounds = 0
        while True:
            arrived = {"primary": False}

            def on_receive(packet, _frame=frame, _arrived=arrived):
                if not packet.duplicate:
                    _arrived["primary"] = True
                return rx.accept(
                    self.key, _frame, packet.corrupt, packet.duplicate
                )

            ok = yield from self.link.ship(
                frame, toward=toward, on_receive=on_receive
            )
            if ok:
                self.audit.acked += 1
                if rounds > self.audit.max_resend_rounds:
                    self.audit.max_resend_rounds = rounds
                return True
            if not arrived["primary"]:
                # Lost or refused pre-flight: identical to the legacy
                # transfer outcome — the caller's queue-and-retry machinery
                # owns recovery, so benign timing is unchanged.
                return False
            rounds += 1
            if rounds > self.resend_limit:
                self.audit.give_ups += 1
                if rounds > self.audit.max_resend_rounds:
                    self.audit.max_resend_rounds = rounds
                return False
            # Arrived but NACKed (corrupt in flight): resend the same
            # frame immediately — the link's own latency paces the loop.
            self.audit.resends += 1


class NaiveSender:
    """Same framing, no verification, no resend — the pre-PR behaviour."""

    def __init__(
        self,
        link: "HostLink",
        key: str,
        audit: Optional[TransportAudit] = None,
        resend_limit: int = DEFAULT_RESEND_LIMIT,
    ):
        self.link = link
        self.key = key
        self.audit = audit if audit is not None else TransportAudit()
        self._next_seq = 1

    def ship(self, payload: Any, toward: "Host", rx) -> Any:
        frame = Frame(self._next_seq, payload, payload_checksum(payload))
        self._next_seq += 1
        self.audit.shipped += 1

        def on_receive(packet, _frame=frame):
            return rx.accept(
                self.key, _frame, packet.corrupt, packet.duplicate
            )

        ok = yield from self.link.ship(
            frame, toward=toward, on_receive=on_receive
        )
        if ok:
            self.audit.acked += 1
        return ok


def make_sender(
    kind: str,
    link: "HostLink",
    key: str,
    audit: Optional[TransportAudit] = None,
    resend_limit: int = DEFAULT_RESEND_LIMIT,
):
    if kind == "stabilizing":
        return StabilizingSender(link, key, audit, resend_limit)
    if kind == "naive":
        return NaiveSender(link, key, audit, resend_limit)
    raise ValueError(
        f"unknown transport kind {kind!r} (expected one of {TRANSPORT_KINDS})"
    )


def make_receiver(
    kind: str,
    audit: Optional[TransportAudit] = None,
    apply: Optional[Callable[[Any], None]] = None,
):
    if kind == "stabilizing":
        return StabilizingReceiver(audit)
    if kind == "naive":
        return NaiveReceiver(audit, apply)
    raise ValueError(
        f"unknown transport kind {kind!r} (expected one of {TRANSPORT_KINDS})"
    )


@dataclass
class BridgeGuard:
    """Stabilizing receive-side guard for cross-shard bridge envelopes.

    The bridge is epoch-synchronous (no resend path), so the guard's job is
    the receive half only: verify each envelope's checksum and drop
    duplicate ``(origin, seq)`` arrivals, keeping merged fingerprints
    invariant even when the bridge adversary duplicates or corrupts copies
    in flight.  The naive mode records what it *would* have dropped but
    lets everything through — the measurable violation.
    """

    stabilizing: bool = True
    audit: TransportAudit = field(default_factory=TransportAudit)
    _seen: set[tuple[str, int]] = field(default_factory=set)

    def admit(self, origin: str, seq: int, checksum_ok: bool) -> bool:
        """Whether the envelope may be queued for delivery."""
        key = (origin, seq)
        duplicate = key in self._seen
        self._seen.add(key)
        if self.stabilizing:
            if not checksum_ok:
                self.audit.corrupt_rejected += 1
                return False
            if duplicate:
                self.audit.duplicate_dropped += 1
                return False
            return True
        if not checksum_ok:
            self.audit.corrupt_accepted += 1
        if duplicate:
            self.audit.duplicate_applied += 1
        return True
