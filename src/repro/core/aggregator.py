"""Alert aggregation: native keywords → personal categories (§4.2).

"The user can also specify the mappings from those keywords to a set of
personalized alert category names.  For example, alert aggregation can be
achieved by mapping all of 'Stocks', 'Financial news', and 'Earnings
reports' to a single category called 'Investment'."

Sub-categorization for filtering (§4.2 "Alert filtering") is the same
mechanism pointed the other way: map "Sensor ON" and "Sensor OFF" to two
*different* categories so they can carry different delivery modes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError


class CategoryAggregator:
    """Keyword → personal-category mapping with an optional default."""

    def __init__(self, default_category: Optional[str] = None):
        self._mapping: dict[str, str] = {}
        self.default_category = default_category

    def map_keyword(self, keyword: str, category: str) -> None:
        """Route ``keyword`` into ``category`` (re-mapping is allowed — that
        is exactly the §3.3 dynamic-customization scenario)."""
        if not keyword or not category:
            raise ConfigurationError("keyword and category must be non-empty")
        self._mapping[keyword.casefold()] = category

    def map_keywords(self, keywords: list[str], category: str) -> None:
        """Aggregate several keywords into one category at once."""
        for keyword in keywords:
            self.map_keyword(keyword, category)

    def unmap_keyword(self, keyword: str) -> None:
        self._mapping.pop(keyword.casefold(), None)

    def category_for(self, keyword: str) -> Optional[str]:
        """Resolve a native keyword to a personal category.

        Matching is case-insensitive (sources are sloppy about case).
        Returns the default category — possibly None — for unmapped
        keywords; MAB treats None as "drop with a note in the journal".
        """
        return self._mapping.get(keyword.casefold(), self.default_category)

    def keywords_for(self, category: str) -> list[str]:
        """All keywords currently aggregated into ``category``."""
        return sorted(
            keyword
            for keyword, mapped in self._mapping.items()
            if mapped == category
        )

    def known_categories(self) -> set[str]:
        categories = set(self._mapping.values())
        if self.default_category is not None:
            categories.add(self.default_category)
        return categories
