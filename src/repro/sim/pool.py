"""Free-list pooling for the kernel's hottest allocations.

Every alert delivery burns through a stream of short-lived ``Event`` and
``Timeout`` objects: ack guards, transit timers, zero-delay resume hops,
process kick-starts.  At farm scale those allocations (object + callbacks
list, twice per hop) dominate the scheduler itself.  The pool keeps two
free lists — one per concrete class — that the scheduler's dispatch loop
refills and its ``timeout()``/``event()`` factories draw from.

Safety model (the part that makes pooling legal in a deterministic
kernel):

- **Only provably unreferenced objects are recycled.**  The dispatch loop
  recycles an event right after processing (or discarding its tombstone)
  *iff* ``sys.getrefcount`` shows the queue entry and the loop's own
  local are the only remaining references.  An object anyone still holds
  — a ``Condition``'s child list, an ack table, user code that bound the
  timer — is simply left for the garbage collector.  Recycling therefore
  can never change what a live reference observes.
- **Exact-class only.**  ``Process``, ``Condition``, ``StorePut`` etc.
  subclass ``Event`` but carry extra state and external references; the
  free lists accept exactly ``Event`` and exactly ``Timeout``.
- **Reuse-after-free guards.**  Each pooled object is flagged
  ``_pooled`` while it sits in a free list.  The public :meth:`release`
  raises :class:`~repro.errors.PoolError` on a double release or on an
  attempt to pool a live (still scheduled, uncancelled) event, and
  refuses cancelled timers outright — their tombstone may still sit in a
  queue, and recycling them would let a stale queue entry fire a fresh
  incarnation.  Only the dispatch loop, which is by construction holding
  the entry it just discarded, may recycle a cancelled timer.
- **Clean at release.**  Every object in a free list satisfies
  ``_ok is True``, ``_defused is False``, ``_cancelled is False``.
  Release sites (the dispatch loops and :meth:`release`) restore the
  invariant on the rare dirty object, so the factories — the hot side —
  only write the per-use fields (``callbacks``, ``_value``, ``delay``).

The pool is deliberately bounded (:attr:`max_size` per class) so a burst
of a million events cannot pin a million corpses.
"""

from __future__ import annotations

from sys import getrefcount
from typing import Union

from repro.errors import PoolError
from repro.sim.events import Event, Timeout

#: Per-class free-list bound.  Past this, releases fall through to the GC.
DEFAULT_MAX_POOLED = 4096

#: Expected ``getrefcount`` result for an object referenced only by the
#: caller's local binding (+1 for the argument slot of ``release``).
_SOLE_CALLER_REFS = 3


class EventPool:
    """Bounded free lists for exactly-``Event`` and exactly-``Timeout``.

    The scheduler owns one pool instance; its dispatch loop refills the
    lists (refcount-proven, see module docstring) and its factories pop
    from them.  Counters are diagnostics for tests and reports:

    - ``reused``: factory calls served from a free list;
    - ``recycled``: objects accepted back (dispatch loop + ``release``);
    - ``rejected``: guarded ``release`` calls declined (still referenced,
      or a cancelled timer whose tombstone may still be queued).
    """

    __slots__ = ("timeouts", "events", "max_size",
                 "reused", "rejected", "_cleared")

    def __init__(self, max_size: int = DEFAULT_MAX_POOLED):
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size!r}")
        self.timeouts: list[Timeout] = []
        self.events: list[Event] = []
        self.max_size = max_size
        self.reused = 0
        self.rejected = 0
        #: Objects dropped by :meth:`clear` (keeps ``recycled`` exact).
        self._cleared = 0

    def __len__(self) -> int:
        return len(self.timeouts) + len(self.events)

    @property
    def recycled(self) -> int:
        """Objects accepted back into the free lists, ever.

        Derived instead of counted: every reuse pops one previously
        recycled object, so recycled = reused + still pooled + cleared.
        This keeps a counter update out of the dispatch loop's per-event
        path.
        """
        return (self.reused + len(self.timeouts) + len(self.events)
                + self._cleared)

    def stats(self) -> dict[str, int]:
        """Snapshot of pool occupancy and traffic counters."""
        return {
            "pooled_timeouts": len(self.timeouts),
            "pooled_events": len(self.events),
            "reused": self.reused,
            "recycled": self.recycled,
            "rejected": self.rejected,
        }

    def release(self, event: Union[Event, Timeout]) -> bool:
        """Explicitly return ``event`` to its free list (guarded).

        Returns True when pooled, False when declined by a conservative
        guard; raises :class:`PoolError` on misuse (wrong type, double
        release, live event).  Most callers never need this — the
        scheduler's dispatch loop recycles automatically — but explicit
        lifecycles (e.g. a :class:`~repro.sim.scheduler.TimerScope` that
        knows its timers are dead) may hand objects back early.
        """
        cls = event.__class__
        if cls is Timeout:
            free = self.timeouts
        elif cls is Event:
            free = self.events
        else:
            raise PoolError(
                f"cannot pool {cls.__name__} instances "
                "(only exactly Event and exactly Timeout are poolable)"
            )
        if event._pooled:
            raise PoolError(
                f"double release of {event!r}: already in the free list "
                "(reuse-after-free guard)"
            )
        if event.callbacks is not None and not event._cancelled:
            raise PoolError(
                f"cannot pool live event {event!r}: it is still scheduled "
                "or waiting to be processed"
            )
        if event._cancelled:
            # The tombstone entry may still sit in a scheduler queue and
            # holds a reference; recycling now would let that stale entry
            # fire a fresh incarnation.  The dispatch loop recycles it
            # when the tombstone is discarded.
            self.rejected += 1
            return False
        if getrefcount(event) > _SOLE_CALLER_REFS:
            # Someone else still holds it; a recycle would mutate their
            # object under them.
            self.rejected += 1
            return False
        if len(free) >= self.max_size:
            self.rejected += 1
            return False
        if not event._ok or event._defused:
            event._ok = True  # clean-at-release invariant
            event._defused = False
        event._pooled = True
        free.append(event)
        return True

    def clear(self) -> None:
        """Drop every pooled object (tests; not needed in normal runs)."""
        self._cleared += len(self.timeouts) + len(self.events)
        self.timeouts.clear()
        self.events.clear()
