"""Fault-injection primitives.

The paper evaluated MAB's fault tolerance against a month of naturally
occurring failures (§5).  We reproduce that evaluation by *injecting* the
same failure taxonomy on a schedule.  Components register named injection
handlers with a :class:`FaultInjector`; a faultload (see
:mod:`repro.workloads.faultload`) is a list of :class:`ScheduledFault`
entries the injector replays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class FaultKind(enum.Enum):
    """Failure taxonomy observed in the paper's one-month log (§5)."""

    #: IM service / proxy / network unavailable for an extended period.
    IM_SERVICE_OUTAGE = "im_service_outage"
    #: Client silently logged out; a simple re-logon fixes it.
    CLIENT_LOGOUT = "client_logout"
    #: Client software hung; must be killed and restarted.
    CLIENT_HANG = "client_hang"
    #: Automation pointers invalidated (e.g. client restarted underneath us).
    CLIENT_STALE_POINTER = "client_stale_pointer"
    #: Modal dialog box with a caption known to the monkey thread.
    DIALOG_POPUP = "dialog_popup"
    #: Modal dialog with a caption *not* registered — blocks until a human
    #: (the paper's two unrecovered failures were of this kind).
    UNKNOWN_DIALOG_POPUP = "unknown_dialog_popup"
    #: MAB process raises an unhandled exception / terminates.
    PROCESS_CRASH = "process_crash"
    #: MAB process stops making progress (AreYouWorking goes unanswered).
    PROCESS_HANG = "process_hang"
    #: Gradual resource exhaustion detected by self-stabilization.
    MEMORY_LEAK = "memory_leak"
    #: Whole-machine power loss (the paper's one unrecovered outage; a UPS
    #: was the fix).
    POWER_OUTAGE = "power_outage"
    #: SMTP relay unavailable.  Not in the paper's one-month log, but the
    #: chaos testkit needs it: the delivery-retry path only fires when
    #: *every* communication block fails, which requires the email backup
    #: channel to be down at routing time.
    EMAIL_OUTAGE = "email_outage"
    #: The warm-standby log-ship link between a primary and its standby is
    #: partitioned.  Appends queue as unshipped on the primary; a lease
    #: expiry during the partition promotes the standby and the fencing
    #: epoch is what keeps the still-alive primary from double-routing.
    REPLICATION_LINK_DOWN = "replication_link_down"
    #: Adversarial transport pulses (not in the paper's log; grounded in the
    #: stabilizing-communication literature): for a bounded window the
    #: targeted channel reorders packets inside a latency-inversion horizon,
    #: amplifies sends into duplicate copies with independent delays, or
    #: flips payload bits (flagged at receive).  ``params`` may carry
    #: explicit :class:`~repro.net.adversary.AdversaryModel` knobs.
    LINK_REORDER = "link_reorder"
    LINK_DUPLICATE = "link_duplicate"
    LINK_CORRUPT = "link_corrupt"


@dataclass(frozen=True)
class ScheduledFault:
    """One fault occurrence in a faultload."""

    at: float
    kind: FaultKind
    target: str
    duration: float = 0.0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.at < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.at!r}")
        if self.duration < 0:
            raise ConfigurationError(
                f"fault duration must be >= 0, got {self.duration!r}"
            )


@dataclass
class InjectionRecord:
    """Audit record of a fault actually injected during a run."""

    fault: ScheduledFault
    injected_at: float
    accepted: bool
    detail: str = ""


FaultHandler = Callable[[ScheduledFault], bool]


class FaultInjector:
    """Replays a fault schedule against registered targets.

    A handler returns True if the fault was injected (the target existed and
    was in a state where the fault applies), False otherwise; both outcomes
    are recorded so benches can report attempted vs. effective faults.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self._handlers: dict[str, FaultHandler] = {}
        self.records: list[InjectionRecord] = []

    def register(self, target: str, handler: FaultHandler) -> None:
        """Register (or replace) the injection handler for ``target``."""
        self._handlers[target] = handler

    def unregister(self, target: str) -> None:
        self._handlers.pop(target, None)

    def load(
        self, faults: list[ScheduledFault], allow_unregistered: bool = False
    ) -> None:
        """Schedule every fault in ``faults`` for replay.

        A faultload referencing a target nobody registered a handler for is
        almost always a wiring mistake, so it raises a
        :class:`ConfigurationError` up front rather than silently recording
        "no handler" rejections fault by fault.  Pass
        ``allow_unregistered=True`` to restore the permissive behaviour
        (e.g. to measure attempted-vs-effective faults on a partial rig).
        """
        if not allow_unregistered:
            missing = sorted({f.target for f in faults} - set(self._handlers))
            if missing:
                raise ConfigurationError(
                    "faultload references unregistered injection targets: "
                    + ", ".join(missing)
                    + f" (registered: {sorted(self._handlers) or 'none'})"
                )
        for fault in sorted(faults, key=lambda f: f.at):
            if fault.at < self.env.now:
                raise ConfigurationError(
                    f"fault at {fault.at} is in the past (now={self.env.now})"
                )
            self.env.process(self._fire(fault), name=f"fault@{fault.at}")

    def inject_now(self, fault: ScheduledFault) -> bool:
        """Inject a single fault immediately (used by unit tests)."""
        handler = self._handlers.get(fault.target)
        if handler is None:
            self.records.append(
                InjectionRecord(fault, self.env.now, False, "no handler")
            )
            return False
        accepted = bool(handler(fault))
        self.records.append(InjectionRecord(fault, self.env.now, accepted))
        return accepted

    def _fire(self, fault: ScheduledFault):
        delay = fault.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.inject_now(fault)
