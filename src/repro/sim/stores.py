"""FIFO stores (mailboxes) for inter-process communication.

A :class:`Store` is an unbounded (or bounded) FIFO of items.  ``put`` and
``get`` return events; a ``get`` on an empty store suspends the caller until
an item arrives.  Stores back every message queue in the reproduction: IM
session inboxes, SMTP relay queues, SMS carrier queues, MAB's alert inbox.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class StorePut(Event):
    """Event for a pending put; triggers when the item is accepted."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.store = store
        self.item = item

    def cancel(self) -> None:
        """Interrupted putter: the item must not enter the store later."""
        if self in self.store._putters:
            self.store._putters.remove(self)


class StoreGet(Event):
    """Event for a pending get; triggers with the retrieved item."""

    __slots__ = ("store", "predicate")

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]]):
        super().__init__(store.env)
        self.store = store
        self.predicate = predicate

    def cancel(self) -> None:
        """Interrupted getter: stop queueing for an item."""
        if self in self.store._getters:
            self.store._getters.remove(self)


class Store:
    """FIFO item store with optional capacity and filtered gets."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Add ``item``; the returned event triggers once it is stored."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Remove and return the first item (matching ``predicate`` if given)."""
        event = StoreGet(self, predicate)
        self._getters.append(event)
        self._dispatch()
        return event

    def put_front(self, item: Any) -> None:
        """Synchronously put ``item`` back at the head of the queue.

        Used by consumers that took an item and then discovered they must
        not process it (e.g. a stale receive loop after a restart): the item
        goes to whoever is waiting next, in original order.  Ignores
        capacity — the item was only borrowed.
        """
        self.items.appendleft(item)
        self._dispatch()

    def clear(self) -> list[Any]:
        """Drop all stored items (used by crash injection) and return them."""
        dropped = list(self.items)
        self.items.clear()
        return dropped

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Accept puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Satisfy getters in arrival order; a filtered getter only
            # consumes the first item that matches its predicate.
            pending: deque[StoreGet] = deque()
            while self._getters:
                get = self._getters.popleft()
                index = self._find(get.predicate)
                if index is None:
                    pending.append(get)
                    continue
                item = self.items[index]
                del self.items[index]
                get.succeed(item)
                progress = True
            self._getters = pending

    def _find(self, predicate: Optional[Callable[[Any], bool]]) -> Optional[int]:
        if predicate is None:
            return 0 if self.items else None
        for index, item in enumerate(self.items):
            if predicate(item):
                return index
        return None
