"""Hierarchical timing-wheel scheduler backend.

The delivery stack's timers are overwhelmingly *short*: ack guards of
seconds to minutes, watchdog probes, channel transit delays.  A binary
heap pays O(log n) per schedule for all of them; the wheel pays O(1) by
hashing each timer's deadline into a slot of a circular bucket array,
with two coarser levels cascading behind it for the long tail (lease
expiries, nightly rejuvenation horizons) and a plain heap as the final
overflow for anything beyond the wheel's ~48-day window (and for
``inf``-delay sentinels).

Geometry
--------

Time is quantized into ticks of :data:`TICK` = 1 s.  The tick size is a
*bucketing* parameter only — pop order always comes from the exact
``(time, sequence)`` tuples, buckets are consumed in strictly increasing
time windows for any floor-based index, and sub-tick neighbours simply
share a bucket whose entries the ``_due`` heap orders precisely.  One
second matches the dominant timer population (second-scale ack guards,
probe timeouts, transit delays), so consecutive short timers land in
consecutive slots and the level-0 scan almost never walks empty slots.
Each of the three levels has 256 slots (8 bits of the absolute tick
index ``idx = int(time)``):

- level 0: 1 tick/slot    → covers the ~4.3 min page around the cursor;
- level 1: 256 ticks/slot → covers ~18 h;
- level 2: 64 Ki ticks/slot → covers ~194 days;
- overflow heap: everything beyond, plus non-finite deadlines.

A per-level occupancy bitmask (one int, bit k = slot k non-empty) turns
"find the next non-empty slot" into two arithmetic ops:
``(shifted & -shifted).bit_length() - 1`` isolates the lowest set bit.

Determinism
-----------

The wheel must reproduce the heap backend's merged ``(time, sequence)``
pop order bit-for-bit.  Slot buckets are unordered, so a slot is never
consumed directly: when ``_due`` — a small heap ordered by the exact
``(time, sequence)`` key — runs dry, :meth:`_refill_due` *stages* the
cursor's whole remaining level-0 page into it and retires the page (the
cursor jumps to the page end).  The invariant chain

    due entries < wheel entries <= overflow entries   (by (time, seq))

makes the pop decision a two-way comparison between the zero-delay FIFO
head and the due head, exactly like heap-vs-FIFO in the reference
backend.  Four rules keep the chain intact:

- *Page-wise staging*: staging takes every occupied slot of the current
  page at once, so wheel entries always live in pages strictly after
  the cursor — later in time than anything staged.  One heapify orders
  the page exactly; a page is at most 256 s of deadlines, so the heap
  stays small and pops are one C call.
- *Stragglers*: a schedule landing at ``idx < cur`` (its page was
  already staged) is heappushed straight into ``_due``, which orders it
  exactly among whatever is staged.  Because the cursor retires a full
  page at a time, this is the **dominant path** in steady short-timer
  churn — one exact-ordered C ``heappush``, the same cost as the
  reference heap — while far-future schedules still get O(1) slot
  placement and never touch the heap until their page is current.
- *Cascades*: when a level-0 page is staged, the level-1 slot owning
  the *next* page is scattered into level 0 (and level-2 slots into
  levels 1/0) before any of its entries can be staged, so coarse slots
  never bypass fine ordering.
- *Window migration*: when the whole wheel empties, the cursor jumps to
  the overflow head and every overflow entry inside the new level-2
  window is re-placed into the wheel.  Non-finite deadlines never
  migrate — they are popped directly from the overflow heap only when
  nothing finite remains anywhere.

``_due`` keeps a **stable list identity** (refills use ``due[:] = ...``)
because the dispatch loop holds a local alias across callbacks, and a
callback may cancel enough timers to trigger compaction mid-dispatch.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.events import Event, Timeout
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Environment

_INFINITY = float("inf")

#: Seconds per tick.  A deadline lands in slot ``int(time)``, whose
#: window is ``[k*TICK, (k+1)*TICK)``.  Granularity only — see the
#: module docstring; ordering never depends on the tick size.
TICK = 1.0
#: 1 / TICK.  With TICK = 1 the index is just ``int(time)``.
SCALE = 1.0
#: Slots per level (8 index bits each, 3 levels).
SLOTS = 256
LEVELS = 3
#: Ticks covered by the wheel before the overflow heap takes over.
WHEEL_SPAN_TICKS = SLOTS ** LEVELS


class WheelScheduler(Scheduler):
    """O(1)-schedule backend: 3-level, 256-slot hierarchical wheel."""

    name = "wheel"

    __slots__ = (
        "_lv0", "_lv1", "_lv2", "_occ0", "_occ1", "_occ2",
        "_due", "_overflow", "_cur", "_cur_time", "_wheel_count",
    )

    def __init__(self, env: "Environment", initial_time: float = 0.0):
        super().__init__(env, initial_time)
        self._lv0: list[list] = [[] for _ in range(SLOTS)]
        self._lv1: list[list] = [[] for _ in range(SLOTS)]
        self._lv2: list[list] = [[] for _ in range(SLOTS)]
        self._occ0 = 0
        self._occ1 = 0
        self._occ2 = 0
        #: Staged entries in exact (time, sequence) heap order.  The list
        #: identity is stable for the scheduler's lifetime.
        self._due: list[tuple[float, int, Event]] = []
        #: Beyond-window and non-finite deadlines, plain (time, seq, ev) heap.
        self._overflow: list[tuple[float, int, Event]] = []
        #: Next absolute tick index to examine (never decreases).
        self._cur = int(self._now)
        #: ``float(_cur)``, kept in lockstep: deadlines below it are
        #: stragglers, detected with one float compare instead of an
        #: ``int()`` call (``int(t) < cur  iff  t < float(cur)`` for the
        #: integer ``cur``).  Update both or neither.
        self._cur_time = float(self._cur)
        #: Entries currently held in the three levels (not due/overflow).
        self._wheel_count = 0

    # -- placement ------------------------------------------------------

    def _insert(self, entry: tuple[float, int, Event], time: float) -> None:
        """Place ``entry`` by deadline: due (straggler), a level, or overflow."""
        if time == _INFINITY:
            heappush(self._overflow, entry)
            return
        idx = int(time)
        cur = self._cur
        if idx < cur:
            # Straggler: its page was already staged.  The _due heap
            # orders it exactly among whatever is already staged.
            heappush(self._due, entry)
        elif idx >> 8 == cur >> 8:
            slot = idx & 255
            self._lv0[slot].append(entry)
            self._occ0 |= 1 << slot
            self._wheel_count += 1
        elif idx >> 16 == cur >> 16:
            slot = (idx >> 8) & 255
            self._lv1[slot].append(entry)
            self._occ1 |= 1 << slot
            self._wheel_count += 1
        elif idx >> 24 == cur >> 24:
            slot = (idx >> 16) & 255
            self._lv2[slot].append(entry)
            self._occ2 |= 1 << slot
            self._wheel_count += 1
        else:
            heappush(self._overflow, entry)

    # -- scheduling -----------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing at ``now + delay``."""
        if delay == 0.0:
            seq = self._sequence + 1
            self._sequence = seq
            self._immediate.append((self._now, seq, event))
        elif delay > 0.0:
            seq = self._sequence + 1
            self._sequence = seq
            time = self._now + delay
            self._insert((time, seq, event), time)
        elif delay < 0:
            raise ValueError(
                f"cannot schedule into the past (delay={delay!r})"
            )
        else:
            raise ValueError(
                f"cannot schedule at delay={delay!r}: NaN never compares, "
                "it would corrupt the queue order"
            )

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Pooled Timeout factory with level-0 placement inlined.

        Pooled timers are clean at release, so only the per-use fields
        (``callbacks``, ``_value``, ``delay``) are written here.
        """
        free = self._free_timeouts
        if free and delay >= 0.0:  # NaN and negatives fall through
            timer = free.pop()
            timer._pooled = False
            timer.callbacks = []
            timer._value = value
            timer.delay = delay
            seq = self._sequence + 1
            self._sequence = seq
            if delay == 0.0:
                self._immediate.append((self._now, seq, timer))
            else:
                time = self._now + delay
                if time < self._cur_time:
                    # Hot case: the deadline lands inside the page being
                    # consumed (staging retired it wholesale), so it
                    # joins the staged heap directly — one exact-ordered
                    # C heappush, the same cost as the reference
                    # backend's schedule.  One float compare stands in
                    # for the straggler index test (see _cur_time).
                    heappush(self._due, (time, seq, timer))
                else:
                    try:
                        # int(inf) raises instead of costing every
                        # finite deadline a comparison (the try is free
                        # on 3.11+).  NaN cannot reach here: it fails
                        # the delay >= 0.0 guard above and falls through
                        # to the constructor.
                        idx = int(time)
                    except OverflowError:
                        heappush(self._overflow, (time, seq, timer))
                    else:
                        cur = self._cur
                        if idx >> 8 == cur >> 8:
                            # A short timer in the next (unstaged) part
                            # of the current page: O(1) slot placement.
                            slot = idx & 255
                            self._lv0[slot].append((time, seq, timer))
                            self._occ0 |= 1 << slot
                            self._wheel_count += 1
                        else:
                            self._insert((time, seq, timer), time)
            self.pool.reused += 1
            return timer
        return Timeout(self.env, delay, value)

    # -- staging --------------------------------------------------------

    def _cross_boundary(self) -> None:
        """Level-0 staging just walked the cursor onto a page boundary.

        The coarse slots owning the new position must cascade *now*, not
        when the scan next looks for them: the level-1/2 scans start
        strictly after the cursor's own slot (entries behind it would
        break the merged order), and fresh placements for the new page
        go straight to level 0 — staging those ahead of coarser entries
        for the same page would run the clock backwards.
        """
        cur = self._cur
        if (cur >> 8) & 255 == 0:
            if (cur >> 16) & 255 == 0:
                # Walked into a new level-2 window (off the very end of
                # the wheel): the levels are empty, but overflow entries
                # inside the new window must come home before any new
                # placement can be staged past them.
                overflow = self._overflow
                window = cur >> 24
                insert = self._insert
                while overflow:
                    time = overflow[0][0]
                    if time == _INFINITY or int(time) >> 24 != window:
                        break
                    insert(heappop(overflow), time)
                return
            # New level-1 page: cascade its level-2 slot (first-page
            # entries skip level 1 entirely — its scan would miss them).
            pos2 = (cur >> 16) & 255
            bit2 = 1 << pos2
            if self._occ2 & bit2:
                self._occ2 &= ~bit2
                bucket = self._lv2[pos2]
                lv0, lv1 = self._lv0, self._lv1
                bits0 = bits1 = 0
                first_page = cur >> 8
                for entry in bucket:
                    idx = int(entry[0])
                    if idx >> 8 == first_page:
                        s = idx & 255
                        lv0[s].append(entry)
                        bits0 |= 1 << s
                    else:
                        s = (idx >> 8) & 255
                        lv1[s].append(entry)
                        bits1 |= 1 << s
                self._occ0 |= bits0
                self._occ1 |= bits1
                bucket.clear()
            return
        # New page within the current level-1 page: cascade its slot.
        pos1 = (cur >> 8) & 255
        bit1 = 1 << pos1
        if self._occ1 & bit1:
            self._occ1 &= ~bit1
            bucket = self._lv1[pos1]
            lv0 = self._lv0
            bits = 0
            for entry in bucket:
                s = int(entry[0]) & 255
                lv0[s].append(entry)
                bits |= 1 << s
            self._occ0 |= bits
            bucket.clear()

    def _refill_due(self) -> bool:
        """Stage the next occupied slot (or overflow window) into ``_due``.

        Returns True when ``_due`` is non-empty afterwards; False when
        the wheel is empty and the overflow holds nothing finite.
        """
        due = self._due
        while True:
            if due:
                # A migration below (or a current-tick direct insert it
                # triggered) already staged entries.
                return True
            cur = self._cur
            occ0 = self._occ0
            if occ0:
                # Page-wise staging: pull every occupied slot of the
                # current page into _due at once and retire the page.
                # Occupied slots are all at or after the cursor's
                # position (earlier placements became stragglers), and
                # after the boundary cascade below every wheel entry
                # lives in a strictly later page, so one heapify gives
                # the exact merged order.
                lv0 = self._lv0
                bits = occ0
                while bits:
                    bit = bits & -bits
                    bits ^= bit
                    bucket = lv0[bit.bit_length() - 1]
                    due.extend(bucket)
                    bucket.clear()
                if len(due) > 1:
                    heapify(due)
                self._wheel_count -= len(due)
                self._occ0 = 0
                cur = (cur & ~255) + 256
                self._cur = cur
                self._cur_time = float(cur)
                # The cursor is now on the next page boundary: cascade
                # the slots owning it before anything else runs.
                self._cross_boundary()
                return True
            occ1 = self._occ1
            if occ1:
                # Level-0 page exhausted: cascade the next occupied
                # level-1 slot.  All its entries share one level-0 page,
                # so they scatter directly into level 0.
                pos = ((cur >> 8) & 255) + 1
                shifted = occ1 >> pos if pos < 256 else 0
                if shifted:
                    slot = pos + ((shifted & -shifted).bit_length() - 1)
                    bucket = self._lv1[slot]
                    self._occ1 = occ1 & ~(1 << slot)
                    page = ((cur >> 16) << 8) + slot
                    cur = page << 8
                    self._cur = cur
                    self._cur_time = float(cur)
                    lv0 = self._lv0
                    bits = 0
                    for entry in bucket:
                        s = int(entry[0]) & 255
                        lv0[s].append(entry)
                        bits |= 1 << s
                    self._occ0 = bits
                    bucket.clear()
                    continue
            occ2 = self._occ2
            if occ2:
                # Level-1 page exhausted: cascade the next occupied
                # level-2 slot into levels 1/0 (entries in the window's
                # first level-0 page must skip level 1, or the level-1
                # scan — which starts *after* the cursor's slot — would
                # bypass them).
                pos = ((cur >> 16) & 255) + 1
                shifted = occ2 >> pos if pos < 256 else 0
                if shifted:
                    slot = pos + ((shifted & -shifted).bit_length() - 1)
                    bucket = self._lv2[slot]
                    self._occ2 = occ2 & ~(1 << slot)
                    sup = ((cur >> 24) << 8) + slot
                    cur = sup << 16
                    self._cur = cur
                    self._cur_time = float(cur)
                    lv0, lv1 = self._lv0, self._lv1
                    bits0 = bits1 = 0
                    first_page = cur >> 8
                    for entry in bucket:
                        idx = int(entry[0])
                        if idx >> 8 == first_page:
                            s = idx & 255
                            lv0[s].append(entry)
                            bits0 |= 1 << s
                        else:
                            s = (idx >> 8) & 255
                            lv1[s].append(entry)
                            bits1 |= 1 << s
                    self._occ0 = bits0
                    self._occ1 = bits1
                    bucket.clear()
                    continue
            # Wheel empty: migrate the overflow's next finite window.
            overflow = self._overflow
            while overflow and overflow[0][2]._cancelled:
                # Dead long timers must not force a pointless migration.
                heappop(overflow)
                self._dead -= 1
            if not overflow:
                return False
            head_time = overflow[0][0]
            if head_time == _INFINITY:
                # inf deadlines never enter the wheel; the dispatch loop
                # pops them straight off the overflow heap.
                return False
            cur = int(head_time)
            self._cur = cur
            self._cur_time = float(cur)
            window = cur >> 24
            insert = self._insert
            while overflow:
                time = overflow[0][0]
                if time == _INFINITY or int(time) >> 24 != window:
                    break
                entry = heappop(overflow)
                insert(entry, time)
            # Loop around: the head's slot is now occupied (or it was a
            # tombstone that _insert placed and the next scan will stage
            # and discard).

    # -- tombstones -----------------------------------------------------

    def note_cancelled(self) -> None:
        """A queued entry became a tombstone; compact when they dominate."""
        self._dead += 1
        total = (len(self._immediate) + len(self._due)
                 + self._wheel_count + len(self._overflow))
        if self._dead * 2 > total:
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstone in one occupancy-guided pass.

        ``_immediate`` and ``_due`` are mutated in place — the dispatch
        loop holds local aliases and compaction can run mid-callback.
        """
        immediate = self._immediate
        if immediate:
            live = [e for e in immediate if not e[2]._cancelled]
            immediate.clear()
            immediate.extend(live)
        due = self._due
        if due:
            due[:] = [e for e in due if not e[2]._cancelled]
            heapify(due)
        overflow = self._overflow
        if overflow:
            overflow[:] = [e for e in overflow if not e[2]._cancelled]
            heapify(overflow)
        count = 0
        for level in range(3):
            wheel = (self._lv0, self._lv1, self._lv2)[level]
            occ = (self._occ0, self._occ1, self._occ2)[level]
            new_occ = 0
            while occ:
                bit = occ & -occ
                occ ^= bit
                bucket = wheel[bit.bit_length() - 1]
                bucket[:] = [e for e in bucket if not e[2]._cancelled]
                if bucket:
                    new_occ |= bit
                    count += len(bucket)
            if level == 0:
                self._occ0 = new_occ
            elif level == 1:
                self._occ1 = new_occ
            else:
                self._occ2 = new_occ
        self._wheel_count = count
        self._dead = 0

    # -- inspection -----------------------------------------------------

    def peek(self) -> float:
        """Time of the next *live* queued event, or ``inf`` if idle."""
        immediate = self._immediate
        while immediate and immediate[0][2]._cancelled:
            immediate.popleft()
            self._dead -= 1
        due = self._due
        while True:
            while due and due[0][2]._cancelled:
                heappop(due)
                self._dead -= 1
            if due or not self._refill_due():
                break
        best: Optional[tuple[float, int, Event]] = None
        if immediate:
            best = immediate[0]
        if due and (best is None or due[0] < best):
            best = due[0]
        if best is not None:
            return best[0]
        overflow = self._overflow
        while overflow and overflow[0][2]._cancelled:
            heappop(overflow)
            self._dead -= 1
        return overflow[0][0] if overflow else _INFINITY

    def _pop_live(self) -> Optional[tuple[float, int, Event]]:
        immediate = self._immediate
        due = self._due
        while True:
            while due and due[0][2]._cancelled:
                heappop(due)
                self._dead -= 1
            if not due and self._refill_due():
                continue
            if immediate:
                if immediate[0][2]._cancelled:
                    immediate.popleft()
                    self._dead -= 1
                    continue
                if due and due[0] < immediate[0]:
                    return heappop(due)
                return immediate.popleft()
            if due:
                return heappop(due)
            overflow = self._overflow
            if overflow:
                entry = heappop(overflow)
                if entry[2]._cancelled:
                    self._dead -= 1
                    continue
                return entry
            return None

    def live_entries(self) -> list[tuple[float, int, Event]]:
        """Live entries in pop order (diagnostics and tests only)."""
        entries = [e for e in self._immediate if not e[2]._cancelled]
        entries += [e for e in self._due if not e[2]._cancelled]
        for wheel in (self._lv0, self._lv1, self._lv2):
            for bucket in wheel:
                entries += [e for e in bucket if not e[2]._cancelled]
        entries += [e for e in self._overflow if not e[2]._cancelled]
        entries.sort(key=lambda e: (e[0], e[1]))
        return entries

    @property
    def queue_depth(self) -> int:
        return (len(self._immediate) + len(self._due) + self._wheel_count
                + len(self._overflow) - self._dead)

    # -- dispatch -------------------------------------------------------

    def drain(self, stop_at: float) -> None:
        """Process live entries until the clock would pass ``stop_at``.

        Identical contract to the heap backend's drain; the only change
        is where the next delayed entry comes from (the staged ``_due``
        heap, refilled slot by slot).  Beyond-horizon entries are pushed
        back where they were popped from (``_due`` or the overflow), so
        a later ``run()`` sees the same (time, sequence) keys.
        """
        immediate = self._immediate
        due = self._due
        lv0 = self._lv0
        pool = self.pool
        free_timeouts = pool.timeouts
        free_events = pool.events
        max_pooled = pool.max_size
        refs = getrefcount
        pop_heap = heappop
        while True:
            if due:
                if immediate and immediate[0] < due[0]:
                    entry = immediate.popleft()
                else:
                    entry = pop_heap(due)
            else:
                occ0 = self._occ0
                if occ0:
                    # Inlined page-wise staging (the overwhelmingly
                    # common refill, see _refill_due): retire the whole
                    # current page into _due and advance the cursor to
                    # the next page boundary.
                    bits = occ0
                    while bits:
                        bit = bits & -bits
                        bits ^= bit
                        bucket = lv0[bit.bit_length() - 1]
                        due.extend(bucket)
                        bucket.clear()
                    count = len(due)
                    self._wheel_count -= count
                    self._occ0 = 0
                    cur = (self._cur & ~255) + 256
                    self._cur = cur
                    self._cur_time = float(cur)
                    if count == 1 and not immediate:
                        # Singleton fast path: the page's only entry is
                        # provably next (nothing staged, no zero-delay
                        # work pending) — consume it without a round
                        # trip through the _due heap.
                        entry = due[0]
                        due.clear()
                        self._cross_boundary()
                    else:
                        if count > 1:
                            heapify(due)
                        self._cross_boundary()
                        continue
                else:
                    if ((self._occ1 or self._occ2 or self._overflow)
                            and self._refill_due()):
                        continue
                    if immediate:
                        entry = immediate.popleft()
                    elif self._overflow:
                        # Only non-finite (or dead) deadlines remain.
                        # Tombstones and the horizon are handled right
                        # here, so the shared path below never needs to
                        # know an entry's origin.
                        entry = pop_heap(self._overflow)
                        event = entry[2]
                        if event._cancelled:
                            self._dead -= 1
                            if (event.__class__ is Timeout
                                    and refs(event) == 3
                                    and len(free_timeouts) < max_pooled):
                                event._cancelled = False
                                event._pooled = True
                                free_timeouts.append(event)
                            continue
                        if entry[0] > stop_at:
                            heappush(self._overflow, entry)
                            return
                    else:
                        return
            time, _seq, event = entry
            if event._cancelled:
                self._dead -= 1
                if (event.__class__ is Timeout and refs(event) == 3
                        and len(free_timeouts) < max_pooled):
                    event._cancelled = False  # clean at release
                    event._pooled = True
                    free_timeouts.append(event)
                continue
            if time > stop_at:
                # Popped from _due or the singleton fast path (which
                # left _due empty); push back with the original key —
                # the next drain pops it first again.  Immediates are
                # <= now <= stop_at and overflow pops checked the
                # horizon at their own branch; neither lands here.
                heappush(due, entry)
                return
            self._now = time
            callbacks = event.callbacks
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise event.value
            cls = event.__class__
            if cls is Timeout:
                # A processed, uncancelled Timeout is already clean: it
                # can never have failed (it triggers at construction).
                if refs(event) == 3 and len(free_timeouts) < max_pooled:
                    event._pooled = True
                    free_timeouts.append(event)
            elif cls is Event:
                if refs(event) == 3 and len(free_events) < max_pooled:
                    if not event._ok or event._defused:
                        event._ok = True  # clean at release
                        event._defused = False
                    event._pooled = True
                    free_events.append(event)
