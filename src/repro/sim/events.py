"""Event primitives for the discrete-event kernel.

An :class:`Event` moves through three states: *pending* (created, not yet
triggered), *triggered* (scheduled on the event queue with a value or an
exception), and *processed* (its callbacks have run).  Processes wait on
events by yielding them; the kernel resumes the process with the event's
value, or throws the event's exception into it.

Every class here declares ``__slots__``: the kernel allocates millions of
events per experiment, and slotted instances are both smaller and faster
to touch than ``__dict__``-backed ones.  A fourth, terminal state exists
for timers only: *cancelled* (see :meth:`Timeout.cancel`) — the event's
heap entry becomes a tombstone the kernel skips, so abandoned timers cost
O(1) instead of polluting the queue until their deadline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.errors import EventAlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Environment

_PENDING = object()


class Event:
    """A condition that processes can wait for.

    Events are triggered exactly once, either with :meth:`succeed` (carrying
    a value) or :meth:`fail` (carrying an exception).  Callbacks attached via
    :attr:`callbacks` run when the kernel pops the event off its queue.
    """

    __slots__ = (
        "env", "callbacks", "_value", "_ok", "_defused", "_cancelled",
        "_pooled",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set by :meth:`defused` consumers; a failed event whose exception
        #: nobody observed crashes the simulation (errors never pass silently).
        self._defused = False
        #: Tombstone flag: the kernel discards cancelled queue entries
        #: instead of processing them (only timers ever set this).
        self._cancelled = False
        #: Reuse-after-free guard: True only while the object sits in the
        #: scheduler's free list (see :class:`repro.sim.pool.EventPool`).
        self._pooled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def cancelled(self) -> bool:
        """True once the event was withdrawn from the queue (timers only)."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise AttributeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value (or exception instance) the event was triggered with."""
        if self._value is _PENDING:
            raise AttributeError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on the event.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as observed so it will not crash the run."""
        self._defused = True

    def cancel(self) -> None:
        """Withdraw this event from whatever resource is backing it.

        Called when a process waiting on the event is interrupted: the wait
        is over, so the event must not consume anything on the waiter's
        behalf (e.g. a StoreGet must leave the store's queue, or it would
        swallow the next item into a void).  Base events need no cleanup.
        """

    def __repr__(self) -> str:
        state = (
            "cancelled" if self._cancelled else
            "processed" if self.processed else
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay.

    Unlike the base event, a timeout supports real cancellation: the
    delivery engine races acks against guard timers, watchdogs race probe
    replies against reply timeouts, and in both the timer usually *loses*.
    :meth:`cancel` tombstones the queue entry so the kernel never touches
    it again (lazy deletion; see :meth:`Environment.step`).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if not delay >= 0:
            # Catches NaN too: NaN fails *every* comparison, and a NaN
            # deadline in a queue poisons (time, sequence) ordering.
            if delay != delay:
                raise ValueError(
                    f"timeout delay must be a number, got {delay!r} "
                    "(NaN never compares, it would corrupt the queue order)"
                )
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def cancel(self) -> None:
        """Tombstone this timer's queue entry (idempotent, O(1)).

        A cancelled timeout never fires: its callbacks never run and it
        stays unprocessed forever.  Cancelling an already-processed timer
        is a no-op.
        """
        if self.callbacks is None or self._cancelled:
            return
        self._cancelled = True
        self.env._note_cancelled()

    def __repr__(self) -> str:
        if self._cancelled:
            return f"<Timeout cancelled delay={self.delay!r} at {id(self):#x}>"
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class Condition(Event):
    """Composite event over a set of child events.

    Triggers when ``evaluate`` says enough children have triggered.  If any
    child fails before the condition triggers, the condition fails with that
    child's exception.

    On trigger, the condition releases its losing children: its callback is
    detached from every unprocessed child, and a child timer left with no
    other observer is cancelled outright.  This is what keeps ack-vs-timeout
    races (the delivery engine's inner loop) from leaking one dead timer per
    alert into the heap.  Non-timer children are only detached, never
    cancelled — a late failure on a still-shared child must stay observable.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")
        if not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                # A late failure after the condition already triggered must
                # still be observed somewhere; defuse it because the condition
                # is done and no waiter can see it.
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            self._release_losers()
            return
        self._count += 1
        if self._evaluate(len(self._events), self._count):
            self.succeed(self._collect())
            self._release_losers()

    def _release_losers(self) -> None:
        """Drop this condition's claim on children that did not decide it.

        Timers with no remaining observers are cancelled (tombstoned).
        Anything else keeps its callback so late success/failure still
        flows through :meth:`_on_child` (which defuses late failures).
        """
        on_child = self._on_child
        for event in self._events:
            if not isinstance(event, Timeout):
                continue
            callbacks = event.callbacks
            if callbacks is None or event._cancelled:
                continue
            try:
                callbacks.remove(on_child)
            except ValueError:
                pass
            if not callbacks:
                event.cancel()

    def cancel(self) -> None:
        """Cancelling a condition releases and cancels still-pending children."""
        on_child = self._on_child
        for event in self._events:
            callbacks = event.callbacks
            if callbacks is None:
                continue
            try:
                callbacks.remove(on_child)
            except ValueError:
                pass
            if not event.triggered:
                event.cancel()
            elif isinstance(event, Timeout) and not callbacks:
                event.cancel()

    def _collect(self) -> dict[Event, Any]:
        """Snapshot of values from the children processed so far.

        ``processed`` (not ``triggered``) is the right filter: a Timeout is
        triggered from construction, but only events whose callbacks have run
        have actually *happened* by the time the condition fires.
        """
        return {
            event: event.value
            for event in self._events
            if event.callbacks is None and event._ok
        }


class AnyOf(Condition):
    """Triggers as soon as any child event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda total, done: done >= 1, events)


class AllOf(Condition):
    """Triggers when every child event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda total, done: done >= total, events)
