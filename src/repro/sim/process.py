"""Generator-based simulation processes.

A process wraps a generator.  Each ``yield event`` suspends the process until
the event triggers; the kernel then resumes the generator with the event's
value (``gen.send``) or throws the event's exception into it (``gen.throw``).
A :class:`Process` is itself an event that triggers when the generator
returns (value = the ``StopIteration`` value) or raises.

Resuming processes is the kernel's innermost loop, so this module leans on
two micro-structures: ``send``/``throw`` are captured once per process
(``self._send``) instead of being looked up per resume, and the transient
bookkeeping events (the kick-start event, interrupt triggers, and the
rearm events used for already-processed targets) come from the
scheduler's free-list pool via ``env.event()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import Interrupt
from repro.sim.events import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class Process(Event):
    """A running simulation process (and the event of its termination)."""

    __slots__ = ("name", "_generator", "_waiting_on", "_send", "_throw", "_wake")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"process target must be a generator, got {generator!r}"
            )
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        #: The one bound ``_resume`` used as a callback everywhere, so a
        #: fresh bound-method object is not allocated on every yield.
        self._wake = self._resume
        #: The event this process is currently waiting on (None while running).
        self._waiting_on: Optional[Event] = None
        # Kick-start the process at the current simulation time.
        init = env.event()
        init.succeed()
        init.callbacks.append(self._wake)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        Used for crash/kill injection and for cancelling waits.  Interrupting
        a finished process is an error; interrupting a process that is mid-
        resume is delivered at its next suspension point.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        # Deliver via a zero-delay event so interrupts obey queue ordering.
        trigger = self.env.event()
        trigger.succeed()
        trigger.callbacks.append(lambda _evt: self._deliver_interrupt(cause))

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self.is_alive:
            return  # process finished before the interrupt landed
        target = self._waiting_on
        if target is not None:
            callbacks = target.callbacks
            if callbacks and self._wake in callbacks:
                callbacks.remove(self._wake)
            if not target.triggered:
                target.cancel()
            elif isinstance(target, Timeout) and not callbacks:
                # Abandoned timer with no other observer: tombstone it so
                # the queue does not carry it to its (now meaningless)
                # deadline.
                target.cancel()
        self._waiting_on = None
        self._step(Interrupt(cause), ok=False)

    def _resume(self, event: Event) -> None:
        """Advance the generator one yield (the kernel's innermost call).

        This is ``_step`` with the event unpacking inlined — one call per
        dispatched event instead of two.  ``_step`` below is the same
        logic for resumes that do not start from an event (interrupt
        delivery, bad-yield errors); keep the two in lockstep.  Direct
        slot reads are safe: the event is processed by the time its
        callbacks run, so the ``value``/``ok`` property guards cannot
        trip.
        """
        self._waiting_on = None
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                event._defused = True
                target = self._throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self._ok = False
            self._value = exc
            env.schedule(self)
            return
        env._active_process = None

        try:
            # The yielded target's callbacks list is needed either way;
            # letting a non-event fail the attribute load replaces an
            # isinstance check on every resume (free on 3.11+).
            callbacks = target.callbacks
        except AttributeError:
            self._bad_yield(target)
            return
        if callbacks is not None:
            self._waiting_on = target
            callbacks.append(self._wake)
            return
        if isinstance(target, Event):
            self._rearm(target)
            return
        self._bad_yield(target)

    def _step(self, value: Any, ok: bool) -> None:
        """Advance the generator one yield and wire up the next wait."""
        env = self.env
        env._active_process = self
        try:
            if ok:
                target = self._send(value)
            else:
                target = self._throw(value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self._ok = False
            self._value = exc
            env.schedule(self)
            return
        env._active_process = None

        if isinstance(target, Event):
            callbacks = target.callbacks
            if callbacks is not None:
                self._waiting_on = target
                callbacks.append(self._wake)
                return
            self._rearm(target)
            return
        self._bad_yield(target)

    def _rearm(self, target: Event) -> None:
        # Already-processed events resume the process on the next tick so
        # that a tight loop over completed events cannot starve the queue.
        env = self.env
        rearm = env.event()
        target_ok = target._ok
        rearm._ok = target_ok
        rearm._value = target._value
        env.schedule(rearm)
        if not target_ok:
            target._defused = True
            rearm._defused = True
        self._waiting_on = rearm
        rearm.callbacks.append(self._wake)

    def _bad_yield(self, target: Any) -> None:
        message = TypeError(
            f"process {self.name!r} yielded {target!r}, expected an Event"
        )
        self._step(message, ok=False)

    def __repr__(self) -> str:
        status = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {status}>"
