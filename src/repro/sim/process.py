"""Generator-based simulation processes.

A process wraps a generator.  Each ``yield event`` suspends the process until
the event triggers; the kernel then resumes the generator with the event's
value (``gen.send``) or throws the event's exception into it (``gen.throw``).
A :class:`Process` is itself an event that triggers when the generator
returns (value = the ``StopIteration`` value) or raises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import Interrupt
from repro.sim.events import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class Process(Event):
    """A running simulation process (and the event of its termination)."""

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"process target must be a generator, got {generator!r}"
            )
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        #: The event this process is currently waiting on (None while running).
        self._waiting_on: Optional[Event] = None
        # Kick-start the process at the current simulation time.
        init = Event(env)
        init.succeed()
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.Interrupt` into the process.

        Used for crash/kill injection and for cancelling waits.  Interrupting
        a finished process is an error; interrupting a process that is mid-
        resume is delivered at its next suspension point.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        # Deliver via a zero-delay event so interrupts obey queue ordering.
        trigger = Event(self.env)
        trigger.succeed()
        trigger.callbacks.append(lambda _evt: self._deliver_interrupt(cause))

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self.is_alive:
            return  # process finished before the interrupt landed
        target = self._waiting_on
        if target is not None:
            callbacks = target.callbacks
            if callbacks and self._resume in callbacks:
                callbacks.remove(self._resume)
            if not target.triggered:
                target.cancel()
            elif isinstance(target, Timeout) and not callbacks:
                # Abandoned timer with no other observer: tombstone it so
                # the heap does not carry it to its (now meaningless)
                # deadline.
                target.cancel()
        self._waiting_on = None
        self._step(Interrupt(cause), ok=False)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event.value, ok=event.ok)
        if not event.ok:
            event.defuse()

    def _step(self, value: Any, ok: bool) -> None:
        """Advance the generator one yield and wire up the next wait."""
        self.env._active_process = self
        try:
            if ok:
                target = self._generator.send(value)
            else:
                target = self._generator.throw(value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self._ok = False
            self._value = exc
            self.env.schedule(self)
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            message = TypeError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self._step(message, ok=False)
            return
        if target.processed:
            # Already-processed events resume the process on the next tick so
            # that a tight loop over completed events cannot starve the queue.
            rearm = Event(self.env)
            rearm._ok = target.ok
            rearm._value = target.value
            self.env.schedule(rearm)
            if not target.ok:
                target.defuse()
                rearm._defused = True
            self._waiting_on = rearm
            rearm.callbacks.append(self._resume)
            return
        self._waiting_on = target
        target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        status = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {status}>"
