"""A point-to-point link between two hosts (the replication ship channel).

Unlike the :mod:`repro.net` substrates — shared *services* with accounts,
sessions and mailboxes — a :class:`HostLink` is a bare pipe: latency drawn
from a :class:`~repro.net.channel.LatencyModel`, optional loss, an
availability flag the fault injector can toggle
(:data:`~repro.sim.failures.FaultKind.REPLICATION_LINK_DOWN`), and
endpoint-host awareness: a transfer whose destination host is dark fails
exactly like a dropped packet.

The warm-standby pair (:mod:`repro.core.replication`) ships pessimistic-log
records and heartbeats over one of these.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.channel import ChannelBase, LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.host import Host
    from repro.sim.kernel import Environment

#: LAN-to-LAN ship latency: a few tens of milliseconds, tail under a second.
DEFAULT_LINK_LATENCY = LatencyModel(median=0.03, sigma=0.5, low=0.005, high=1.0)


class HostLink(ChannelBase):
    """Point-to-point transfer channel between two failable hosts."""

    def __init__(
        self,
        env: "Environment",
        src: "Host",
        dst: "Host",
        rng: np.random.Generator,
        latency: LatencyModel = DEFAULT_LINK_LATENCY,
        loss_probability: float = 0.0,
        name: Optional[str] = None,
    ):
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1], got {loss_probability}"
            )
        super().__init__(env, name or f"link-{src.name}-{dst.name}")
        self.src = src
        self.dst = dst
        self.rng = rng
        self.latency = latency
        self.loss_probability = loss_probability

    def usable(self, toward: "Host") -> bool:
        """Whether a transfer toward ``toward`` could start right now."""
        return self.available and toward.up

    def transfer(self, toward: Optional["Host"] = None):
        """Generator: move one record toward ``toward`` (default ``dst``).

        Returns True when the record arrived, False when the link was down,
        the destination host was dark at arrival time, or the packet was
        lost.  Waiting the latency happens in either case — the sender only
        learns the outcome after the round trip.
        """
        toward = toward if toward is not None else self.dst
        if not self.available:
            self.stats.rejected += 1
            return False
        self.stats.submitted += 1
        sent_at = self.env.now
        yield self.env.timeout(self.latency.draw(self.rng))
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.stats.lost += 1
            return False
        if not self.available or not toward.up:
            self.stats.lost += 1
            return False
        self.stats.record_delivery(self.env.now - sent_at)
        return True
