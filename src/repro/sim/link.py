"""A point-to-point link between two hosts (the replication ship channel).

Unlike the :mod:`repro.net` substrates — shared *services* with accounts,
sessions and mailboxes — a :class:`HostLink` is a bare pipe: latency drawn
from a :class:`~repro.net.channel.LatencyModel`, optional loss, an
availability flag the fault injector can toggle
(:data:`~repro.sim.failures.FaultKind.REPLICATION_LINK_DOWN`), and
endpoint-host awareness: a transfer whose destination host is dark fails
exactly like a dropped packet.

The link also carries the adversarial fault surface: its
:class:`~repro.net.adversary.AdversaryModel` can reorder a packet inside a
bounded horizon, amplify it into duplicate copies with independent delays,
and flag copies corrupt at receive time.  :meth:`HostLink.ship` exposes the
payload-carrying form — every arriving copy (primary and duplicates) is
handed to an ``on_receive`` callback, and the primary copy's callback return
doubles as the transport-level acknowledgement.

Accounting contract (the regression tier pins this): a transfer refused
pre-flight charges ``stats.rejected`` exactly once and never enters the
pipe; a packet that entered the pipe charges exactly one of
``stats.delivered`` / ``stats.lost``, whether it fell to the loss draw, a
mid-flight outage, or a dark destination.  ``submitted == delivered + lost``
therefore holds across any resend sequence; duplicate copies ride the
adversary counters only.

The warm-standby pair (:mod:`repro.core.replication`) ships pessimistic-log
records and heartbeats over one of these.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, NamedTuple, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.channel import ChannelBase, LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.host import Host
    from repro.sim.kernel import Environment

#: LAN-to-LAN ship latency: a few tens of milliseconds, tail under a second.
DEFAULT_LINK_LATENCY = LatencyModel(median=0.03, sigma=0.5, low=0.005, high=1.0)


class LinkPacket(NamedTuple):
    """One arriving copy of a shipped payload, as the receiver sees it."""

    payload: Any
    corrupt: bool
    duplicate: bool
    sent_at: float


class HostLink(ChannelBase):
    """Point-to-point transfer channel between two failable hosts."""

    def __init__(
        self,
        env: "Environment",
        src: "Host",
        dst: "Host",
        rng: np.random.Generator,
        latency: LatencyModel = DEFAULT_LINK_LATENCY,
        loss_probability: float = 0.0,
        name: Optional[str] = None,
    ):
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1], got {loss_probability}"
            )
        super().__init__(env, name or f"link-{src.name}-{dst.name}")
        self.src = src
        self.dst = dst
        self.rng = rng
        self.latency = latency
        self.loss_probability = loss_probability

    def usable(self, toward: "Host") -> bool:
        """Whether a transfer toward ``toward`` could start right now."""
        return self.available and toward.up

    def transfer(self, toward: Optional["Host"] = None):
        """Generator: move one record toward ``toward`` (default ``dst``).

        Returns True when the record arrived, False when the link was down,
        the destination host was dark at arrival time, or the packet was
        lost.  Waiting the latency happens in either case — the sender only
        learns the outcome after the round trip.
        """
        result = yield from self.ship(None, toward=toward)
        return result

    def ship(
        self,
        payload: Any,
        toward: Optional["Host"] = None,
        on_receive: Optional[Callable[[LinkPacket], Optional[bool]]] = None,
    ):
        """Generator: move ``payload`` toward ``toward`` (default ``dst``).

        Every copy that arrives — the primary and any adversarial
        duplicates — is handed to ``on_receive`` as a :class:`LinkPacket`.
        The return value is False for a pre-flight refusal or an in-flight
        loss; when the primary copy arrives it is whatever ``on_receive``
        returned (``None`` coerces to True), which lets a receiver NACK a
        corrupt frame through the sender's round trip.
        """
        toward = toward if toward is not None else self.dst
        if not self.available:
            # Pre-flight refusal: the packet never entered the pipe, so it
            # is charged to ``rejected`` only — never also to ``lost``.
            self.stats.rejected += 1
            return False
        self.stats.submitted += 1
        sent_at = self.env.now
        delay = self.latency.draw(self.rng)
        extra_delay, extra_copies, corrupt = self._adversary_effects(self.rng)
        for index in range(extra_copies):
            self.env.process(
                self._ship_copy(payload, toward, on_receive, sent_at),
                name=f"{self.name}-dup{index}",
            )
        yield self.env.timeout(delay + extra_delay)
        if self._in_flight_failure(toward):
            return False
        self.stats.record_delivery(self.env.now - sent_at)
        if on_receive is not None:
            ack = on_receive(LinkPacket(payload, corrupt, False, sent_at))
            return True if ack is None else bool(ack)
        return True

    def _in_flight_failure(self, toward: "Host") -> bool:
        """One exit point for every in-flight failure: exactly one ``lost``
        charge whether the loss draw hit, the link died mid-flight, or the
        destination host was dark at arrival."""
        lost = bool(
            self.loss_probability
            and self.rng.random() < self.loss_probability
        )
        if lost or not self.available or not toward.up:
            self.stats.lost += 1
            return True
        return False

    def _ship_copy(self, payload, toward, on_receive, sent_at: float):
        """A duplicate copy in flight: independent latency, its own reorder
        and corruption draws, and no primary-stream accounting."""
        delay = self.latency.draw(self.rng)
        extra_delay, _, corrupt = self._adversary_effects(self.rng, copy=True)
        yield self.env.timeout(delay + extra_delay)
        if self.loss_probability and self.rng.random() < self.loss_probability:
            return
        if not self.available or not toward.up:
            return
        self.adversary_stats.duplicates_delivered += 1
        if on_receive is not None:
            on_receive(LinkPacket(payload, corrupt, True, sent_at))
