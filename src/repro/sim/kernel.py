"""The discrete-event simulation environment (event queue + clock).

The environment owns a priority queue of ``(time, sequence, event)`` entries.
``sequence`` is a monotonically increasing tie-breaker, so events scheduled
for the same instant are processed in scheduling order — this, plus seeded
randomness, makes every run bit-for-bit deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class Environment:
    """Execution environment for a single simulation run."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing at ``now + delay``."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def peek(self) -> float:
        """Time of the next queued event, or ``float('inf')`` if idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("no events scheduled")
        self._now, _seq, event = heapq.heappop(self._queue)
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of losing it.
            raise event.value

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time or an event) or queue exhaustion.

        - ``until=None``: run until no events remain.
        - ``until=<number>``: run until the clock would pass that time, then
          set the clock exactly to it.
        - ``until=<Event>``: run until that event is processed and return its
          value (raising its exception if it failed).
        """
        if until is None:
            stop_at = float("inf")
        elif isinstance(until, Event):
            if until.processed:
                if not until.ok:
                    raise until.value
                return until.value
            until.callbacks.append(self._stop_on_event)
            try:
                while self._queue:
                    self.step()
            except StopSimulation as stop:
                return stop.value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired"
            )
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"cannot run until {stop_at!r}, already at {self._now!r}"
                )

        while self._queue and self._queue[0][0] <= stop_at:
            self.step()
        if stop_at != float("inf"):
            self._now = max(self._now, stop_at)
        return None

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        if not event.ok:
            event.defuse()
            raise event.value
        raise StopSimulation(event.value)
