"""The discrete-event simulation environment (event queue + clock).

The environment owns two queues sharing one monotonically increasing
``sequence`` tie-breaker, so events scheduled for the same instant are
processed in scheduling order — this, plus seeded randomness, makes every
run bit-for-bit deterministic:

- a priority heap of ``(time, sequence, event)`` entries for delayed
  events (timers);
- a FIFO of zero-delay entries (every ``succeed()``/``fail()`` and every
  process resume lands here).  Zero-delay scheduling is the kernel's
  hottest operation, and a deque append/popleft is O(1) versus the heap's
  O(log n) — with thousands of pending timers in a farm run, that log n
  is real money.  Entries in the FIFO carry the time they were scheduled
  at (≤ now) and the heap never holds entries below now, so "next event"
  is simply the smaller ``(time, sequence)`` head of the two queues: the
  merged order is identical to a single heap's.

Cancelled timers (see :meth:`~repro.sim.events.Timeout.cancel`) stay in
the heap as *tombstones*: :meth:`step` and :meth:`peek` skip them lazily,
and when more than half the queued entries are dead the queue is compacted
in one O(n) pass.  Lazy deletion never reorders live entries — tombstones
only disappear — so determinism is unaffected.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Generator, Iterable, Optional

from repro.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

_INFINITY = float("inf")


class Environment:
    """Execution environment for a single simulation run."""

    __slots__ = (
        "_now", "_queue", "_immediate", "_sequence", "_active_process",
        "_dead_entries", "tracer",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: Structured-tracing hook (:class:`repro.obs.TraceSink`), None when
        #: tracing is off.  Instrumentation sites read this once per probe
        #: (``tr = env.tracer``) so the disabled path costs one slot load.
        self.tracer = None
        self._queue: list[tuple[float, int, Event]] = []
        self._immediate: deque[tuple[float, int, Event]] = deque()
        self._sequence = 0
        self._active_process: Optional[Process] = None
        #: Tombstoned entries still sitting in either queue.
        self._dead_entries = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def queue_depth(self) -> int:
        """Live (non-tombstoned) entries across both queues.

        Diagnostic/test hook: after an ack-vs-timeout race resolves, the
        loser must not linger here.
        """
        return len(self._queue) + len(self._immediate) - self._dead_entries

    @property
    def dead_entries(self) -> int:
        """Tombstoned entries not yet skipped or compacted away."""
        return self._dead_entries

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing at ``now + delay``."""
        if delay == 0.0:
            # Fast path: zero-delay events (succeed/fail/resume) bypass the
            # heap.  FIFO order == sequence order, so the merged pop order
            # is exactly what one big heap would produce.
            self._sequence += 1
            self._immediate.append((self._now, self._sequence, event))
            return
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def _note_cancelled(self) -> None:
        """A queued entry became a tombstone; compact when they dominate."""
        self._dead_entries += 1
        if self._dead_entries * 2 > len(self._queue) + len(self._immediate):
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstone in one pass (heapify keeps the live order:
        pops are by the unique ``(time, sequence)`` key either way)."""
        self._queue = [
            entry for entry in self._queue if not entry[2]._cancelled
        ]
        heapq.heapify(self._queue)
        if self._immediate:
            self._immediate = deque(
                entry for entry in self._immediate if not entry[2]._cancelled
            )
        self._dead_entries = 0

    def peek(self) -> float:
        """Time of the next *live* queued event, or ``float('inf')`` if idle.

        Tombstoned (cancelled) entries at the head of either queue are
        discarded on the way: a cancelled timer's timestamp must never be
        acted on by ``run(until=...)`` or by harness drain loops.
        """
        immediate = self._immediate
        while immediate and immediate[0][2]._cancelled:
            immediate.popleft()
            self._dead_entries -= 1
        queue = self._queue
        while queue and queue[0][2]._cancelled:
            heapq.heappop(queue)
            self._dead_entries -= 1
        if immediate:
            if queue and queue[0] < immediate[0]:
                return queue[0][0]
            return immediate[0][0]
        return queue[0][0] if queue else _INFINITY

    def _pop_live(self) -> Optional[tuple[float, int, Event]]:
        """Pop the next live entry across both queues (skipping tombstones),
        or None when nothing live remains."""
        immediate = self._immediate
        queue = self._queue
        while True:
            if immediate:
                if queue and queue[0] < immediate[0]:
                    entry = heapq.heappop(queue)
                else:
                    entry = immediate.popleft()
            elif queue:
                entry = heapq.heappop(queue)
            else:
                return None
            if entry[2]._cancelled:
                self._dead_entries -= 1
                continue
            return entry

    def _process(self, entry: tuple[float, int, Event]) -> None:
        self._now = entry[0]
        event = entry[2]
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody waited on: surface it instead of losing it.
            raise event.value

    def step(self) -> None:
        """Process exactly one live event from the queue."""
        entry = self._pop_live()
        if entry is None:
            raise SimulationError("no events scheduled")
        self._process(entry)

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time or an event) or queue exhaustion.

        - ``until=None``: run until no live events remain.
        - ``until=<number>``: run until the clock would pass that time, then
          set the clock exactly to it.
        - ``until=<Event>``: run until that event is processed and return its
          value (raising its exception if it failed).
        """
        if until is None:
            stop_at = _INFINITY
        elif isinstance(until, Event):
            if until.processed:
                if not until.ok:
                    raise until.value
                return until.value
            until.callbacks.append(self._stop_on_event)
            try:
                while True:
                    entry = self._pop_live()
                    if entry is None:
                        break
                    self._process(entry)
            except StopSimulation as stop:
                return stop.value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired"
            )
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"cannot run until {stop_at!r}, already at {self._now!r}"
                )

        while True:
            entry = self._pop_live()
            if entry is None:
                break
            if entry[0] > stop_at:
                # Beyond the horizon: the entry can only have come from the
                # heap (immediates are at or before ``now``), so push it
                # back untouched — same (time, sequence) key, same order.
                heapq.heappush(self._queue, entry)
                break
            self._process(entry)
        if stop_at != _INFINITY:
            self._now = max(self._now, stop_at)
        return None

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        if not event.ok:
            event.defuse()
            raise event.value
        raise StopSimulation(event.value)
