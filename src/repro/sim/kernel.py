"""The discrete-event simulation environment (clock + pluggable scheduler).

The environment is the public face of the kernel; the event containers
live behind the :class:`~repro.sim.scheduler.Scheduler` interface with
two backends sharing one contract:

- ``heap`` (:class:`~repro.sim.scheduler.HeapScheduler`): binary heap +
  zero-delay deque, the reference implementation;
- ``wheel`` (:class:`~repro.sim.wheel.WheelScheduler`): hierarchical
  timing wheel with O(1) schedule/cancel for the short timers that
  dominate alert delivery, cascading levels for day-scale horizons.

Both produce the same merged ``(time, sequence)`` pop order — events
scheduled for the same instant are processed in scheduling order — so
every run is bit-for-bit deterministic and journals are byte-identical
across backends.  Pick a backend per environment with
``Environment(scheduler="heap"|"wheel")`` or process-wide with the
``REPRO_SCHEDULER`` environment variable (default: wheel).

Cancelled timers (see :meth:`~repro.sim.events.Timeout.cancel`) stay
queued as *tombstones* skipped lazily and compacted in one O(n) pass
when they dominate; lazy deletion never reorders live entries.  Each
scheduler also recycles provably unreferenced ``Event``/``Timeout``
objects through an :class:`~repro.sim.pool.EventPool`, which is why the
hot factories (``env.timeout``, ``env.event``) and ``env.schedule`` are
bound scheduler methods rather than ``Environment`` methods — one
attribute load, no double dispatch, direct access to the free lists.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.scheduler import Scheduler, TimerScope, make_scheduler

_INFINITY = float("inf")


class Environment:
    """Execution environment for a single simulation run.

    ``schedule``, ``timeout``, ``event`` and ``_note_cancelled`` are
    *instance* attributes bound to the scheduler's methods at
    construction (hot-path de-virtualization); everything else is a
    normal method or property delegating to :attr:`scheduler`.
    """

    __slots__ = (
        "_scheduler", "_active_process", "tracer",
        # Scheduler-bound hot-path callables (see class docstring).
        "schedule", "timeout", "event", "_note_cancelled",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        scheduler: Optional[str] = None,
    ):
        sched = make_scheduler(self, scheduler, float(initial_time))
        self._scheduler = sched
        #: Structured-tracing hook (:class:`repro.obs.TraceSink`), None when
        #: tracing is off.  Instrumentation sites read this once per probe
        #: (``tr = env.tracer``) so the disabled path costs one slot load.
        self.tracer = None
        self._active_process: Optional[Process] = None
        self.schedule = sched.schedule
        self.timeout = sched.timeout
        self.event = sched.event
        self._note_cancelled = sched.note_cancelled

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._scheduler._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def scheduler(self) -> Scheduler:
        """The scheduling backend (diagnostics: ``.name``, ``.pool``,
        ``.live_entries()``)."""
        return self._scheduler

    @property
    def queue_depth(self) -> int:
        """Live (non-tombstoned) entries across the scheduler's queues.

        Diagnostic/test hook: after an ack-vs-timeout race resolves, the
        loser must not linger here.
        """
        return self._scheduler.queue_depth

    @property
    def dead_entries(self) -> int:
        """Tombstoned entries not yet skipped or compacted away."""
        return self._scheduler.dead_entries

    # ------------------------------------------------------------------
    # Factories (``event`` and ``timeout`` are scheduler-bound slots)
    # ------------------------------------------------------------------

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    def timers(self) -> TimerScope:
        """A :class:`TimerScope` — the explicit timer lifecycle handle.

        ::

            with env.timers() as timers:
                guard = timers.acquire(ack_timeout)
                yield env.any_of([ack, guard])
            # guard is structurally cancelled if it lost
        """
        return TimerScope(self)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next *live* queued event, or ``float('inf')``."""
        return self._scheduler.peek()

    def step(self) -> None:
        """Process exactly one live event from the queue."""
        self._scheduler.step()

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time or an event) or queue exhaustion.

        - ``until=None``: run until no live events remain.
        - ``until=<number>``: run until the clock would pass that time, then
          set the clock exactly to it.
        - ``until=<Event>``: run until that event is processed and return its
          value (raising its exception if it failed).
        """
        sched = self._scheduler
        if until is None:
            sched.drain(_INFINITY)
            return None
        if isinstance(until, Event):
            if until.processed:
                if not until.ok:
                    raise until.value
                return until.value
            until.callbacks.append(self._stop_on_event)
            try:
                sched.drain(_INFINITY)
            except StopSimulation as stop:
                return stop.value
            # Queue exhausted before the event fired.  Deregister our
            # callback: the event may legitimately trigger later (user
            # code firing it by hand, a fresh run), and a stale
            # _stop_on_event would raise StopSimulation into whatever
            # drain happens to be active then.
            callbacks = until.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._stop_on_event)
                except ValueError:
                    pass
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired"
            )
        stop_at = float(until)
        if stop_at < sched._now:
            raise ValueError(
                f"cannot run until {stop_at!r}, already at {sched._now!r}"
            )
        sched.drain(stop_at)
        if stop_at != _INFINITY:
            sched._now = max(sched._now, stop_at)
        return None

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        if not event.ok:
            event.defuse()
            raise event.value
        raise StopSimulation(event.value)
