"""Time units and helpers for the simulation clock.

Simulated time is a float number of seconds since the start of the run.
The paper's schedules are wall-clock based (sanity checks every minute,
dialog scans every 20 seconds, nightly rejuvenation at 11:30 PM), so this
module provides unit constants and day-relative helpers.
"""

from __future__ import annotations

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY


def time_of_day(now: float) -> float:
    """Return seconds elapsed since the most recent simulated midnight."""
    return now % DAY


def seconds_until_time_of_day(now: float, target: float) -> float:
    """Return the delay from ``now`` until the next occurrence of ``target``.

    ``target`` is a time of day in seconds since midnight (e.g. 23.5 * HOUR
    for the paper's 11:30 PM rejuvenation).  If ``now`` is exactly at the
    target, the *next* day's occurrence is returned (a full day away).
    """
    if not 0 <= target < DAY:
        raise ValueError(f"target time of day {target!r} outside [0, DAY)")
    delta = (target - time_of_day(now)) % DAY
    return delta if delta > 0 else DAY


def format_time(now: float) -> str:
    """Render simulated time as ``Dd HH:MM:SS.mmm`` for logs and reports."""
    days, rem = divmod(now, DAY)
    hours, rem = divmod(rem, HOUR)
    minutes, seconds = divmod(rem, MINUTE)
    return (
        f"{int(days)}d {int(hours):02d}:{int(minutes):02d}:"
        f"{seconds:06.3f}"
    )
