"""Time units and helpers for the simulation clock.

Simulated time is a float number of seconds since the start of the run.
The paper's schedules are wall-clock based (sanity checks every minute,
dialog scans every 20 seconds, nightly rejuvenation at 11:30 PM), so this
module provides unit constants and day-relative helpers.
"""

from __future__ import annotations

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY


def time_of_day(now: float) -> float:
    """Return seconds elapsed since the most recent simulated midnight."""
    return now % DAY


def seconds_until_time_of_day(now: float, target: float) -> float:
    """Return the delay from ``now`` until the next occurrence of ``target``.

    ``target`` is a time of day in seconds since midnight (e.g. 23.5 * HOUR
    for the paper's 11:30 PM rejuvenation).  If ``now`` is exactly at the
    target, the *next* day's occurrence is returned (a full day away).
    """
    if not 0 <= target < DAY:
        raise ValueError(f"target time of day {target!r} outside [0, DAY)")
    delta = (target - time_of_day(now)) % DAY
    return delta if delta > 0 else DAY


def epoch_index(now: float, epoch: float) -> int:
    """The index of the epoch containing ``now`` (epoch k = [k·e, (k+1)·e)).

    The sharded farm quantizes cross-shard traffic to epoch boundaries;
    these helpers keep the boundary arithmetic in one place so coordinator
    and tests agree on edge cases (``now`` exactly on a boundary belongs to
    the epoch it *starts*).
    """
    if epoch <= 0:
        raise ValueError(f"epoch must be > 0, got {epoch!r}")
    return int(now // epoch)


def epoch_end(now: float, epoch: float) -> float:
    """The end of the epoch containing ``now`` — the next barrier time."""
    return (epoch_index(now, epoch) + 1) * epoch


def epochs_until(until: float, epoch: float) -> int:
    """How many whole epochs cover [0, until] — the barrier count a
    sharded run executes.  A pure function of the arguments, so every
    shard layout runs the identical epoch sequence."""
    if epoch <= 0:
        raise ValueError(f"epoch must be > 0, got {epoch!r}")
    if until <= 0:
        return 0
    whole = int(until // epoch)
    return whole if whole * epoch >= until else whole + 1


def format_time(now: float) -> str:
    """Render simulated time as ``Dd HH:MM:SS.mmm`` for logs and reports."""
    days, rem = divmod(now, DAY)
    hours, rem = divmod(rem, HOUR)
    minutes, seconds = divmod(rem, MINUTE)
    return (
        f"{int(days)}d {int(hours):02d}:{int(minutes):02d}:"
        f"{seconds:06.3f}"
    )
