"""Deterministic discrete-event simulation kernel.

The paper measured SIMBA on real networks with wall-clock time; we reproduce
its timeliness results on a deterministic, seeded discrete-event kernel so
that every latency figure and every fault-recovery trace is exactly
repeatable.  The kernel follows the classic generator-based process model:
a *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects and is resumed when they trigger.

Public surface::

    env = Environment()
    proc = env.process(my_generator(env))
    env.run(until=3600.0)

plus :class:`Store` for mailboxes/queues, :mod:`~repro.sim.rng` for seeded
randomness, :mod:`~repro.sim.clock` for time arithmetic, and
:mod:`~repro.sim.failures` for fault injection.
"""

from repro.errors import Interrupt
from repro.sim.clock import (
    DAY,
    HOUR,
    MINUTE,
    SECOND,
    WEEK,
    format_time,
    time_of_day,
)
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Environment
from repro.sim.pool import EventPool
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULER_ENV_VAR,
    HeapScheduler,
    Scheduler,
    TimerScope,
    make_scheduler,
)
from repro.sim.stores import Store
from repro.sim.wheel import WheelScheduler

__all__ = [
    "AllOf",
    "AnyOf",
    "DAY",
    "DEFAULT_SCHEDULER",
    "Environment",
    "Event",
    "EventPool",
    "HOUR",
    "HeapScheduler",
    "Interrupt",
    "MINUTE",
    "Process",
    "RngRegistry",
    "SCHEDULER_ENV_VAR",
    "SECOND",
    "Scheduler",
    "Store",
    "TimerScope",
    "Timeout",
    "WEEK",
    "WheelScheduler",
    "format_time",
    "make_scheduler",
    "time_of_day",
]
