"""Pluggable scheduling core for the simulation kernel.

The :class:`~repro.sim.kernel.Environment` used to own its event queue
directly; everything that made the kernel fast (zero-delay deque, lazy
tombstone deletion, compaction) lived inline in ``kernel.py``.  This
module factors that machinery into a :class:`Scheduler` interface with
two interchangeable backends:

- :class:`HeapScheduler` — the binary heap + zero-delay deque, kept as
  the reference implementation (O(log n) schedule);
- :class:`~repro.sim.wheel.WheelScheduler` — a hierarchical timing wheel
  (O(1) schedule/cancel for the short ack/probe timers that dominate
  SIMBA's delivery flow, cascading overflow levels for day-scale lease
  and rejuvenation horizons).

Both backends produce the **same merged pop order**: every entry is a
``(time, sequence, event)`` tuple sharing one monotonically increasing
sequence counter, and ties at equal time resolve in scheduling order.
Journals, golden-farm fingerprints and the randomized equivalence suite
are therefore byte-identical across backends — the wheel changes *how*
the next entry is found, never *which* entry is next.

The backend is chosen per :class:`Environment` via its ``scheduler=``
argument, defaulting to the ``REPRO_SCHEDULER`` environment variable
(``heap`` or ``wheel``; the wheel is the default).

Each scheduler also owns an :class:`~repro.sim.pool.EventPool`: the
dispatch loop recycles ``Event``/``Timeout`` objects whose refcount
proves no one else holds them, and the ``timeout()``/``event()``
factories reuse them — at farm scale this removes the dominant
allocation cost per delivered alert.

For timer *consumers*, :class:`TimerScope` provides the explicit
acquire/settle lifecycle used across the delivery stack (router ack
guards, watchdog probes, replication heartbeats, channel transit and
outage timers): timers acquired through a scope are structurally
cancelled when the scope settles — including when a process is
interrupted or its generator is closed mid-wait — instead of relying on
ad-hoc ``timeout.cancel()`` calls at every call site.
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.sim.events import Event, Timeout, _PENDING
from repro.sim.pool import EventPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.kernel import Environment

_INFINITY = float("inf")

#: Environment variable consulted when ``Environment(scheduler=None)``.
SCHEDULER_ENV_VAR = "REPRO_SCHEDULER"
DEFAULT_SCHEDULER = "wheel"


class Scheduler:
    """Interface and shared state for kernel scheduling backends.

    A scheduler owns the clock (``_now``), the zero-delay FIFO, the
    shared sequence counter, tombstone accounting and the event pool.
    Backends implement the delayed-entry container (heap or wheel) and
    the hot loops around it.

    Required backend methods (bound straight onto the Environment
    instance, so ``env.schedule`` *is* ``scheduler.schedule``):

    - ``schedule(event, delay=0.0)`` — enqueue a triggered event;
    - ``timeout(delay, value=None)`` — pooled Timeout factory;
    - ``note_cancelled()`` — tombstone accounting + compaction;
    - ``peek()`` — time of the next live entry (discarding dead heads);
    - ``drain(stop_at)`` — process live entries until the clock would
      pass ``stop_at`` (pushing the first beyond-horizon entry back) or
      the queues exhaust;
    - ``_pop_live()`` — pop the next live entry or None (slow path,
      used by ``step()``);
    - ``live_entries()`` — sorted live entries, for diagnostics/tests;
    - ``queue_depth`` / ``dead_entries`` properties.
    """

    name = "abstract"

    __slots__ = ("env", "_now", "_immediate", "_sequence", "_dead", "pool",
                 "_free_timeouts", "_free_events")

    def __init__(self, env: "Environment", initial_time: float = 0.0):
        self.env = env
        self._now = float(initial_time)
        #: Zero-delay FIFO: every succeed()/fail()/resume lands here.
        #: Entries carry the time they were scheduled at (<= now), so the
        #: merged "next entry" is the smaller (time, sequence) head of
        #: this FIFO and the backend's delayed container.
        self._immediate: deque[tuple[float, int, Event]] = deque()
        self._sequence = 0
        #: Tombstoned entries still sitting in some queue.
        self._dead = 0
        self.pool = EventPool()
        # Aliases for the factories: the pool's list identities are
        # stable for its lifetime, so one attribute load replaces two.
        self._free_timeouts = self.pool.timeouts
        self._free_events = self.pool.events

    # -- shared pooled factory (container-independent) ------------------

    def event(self) -> Event:
        """Untriggered event, reusing a pooled instance when available.

        Pooled objects are *clean at release* (``_ok`` True, ``_defused``
        and ``_cancelled`` False — see :class:`~repro.sim.pool.EventPool`),
        so reacquisition only touches the per-use fields.
        """
        free = self._free_events
        if free:
            event = free.pop()
            event._pooled = False
            event.callbacks = []
            event._value = _PENDING
            self.pool.reused += 1
            return event
        return Event(self.env)

    # -- slow-path single step (shared; backends provide _pop_live) -----

    def step(self) -> None:
        """Process exactly one live event."""
        entry = self._pop_live()
        if entry is None:
            raise SimulationError("no events scheduled")
        self._now = entry[0]
        event = entry[2]
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event.value

    # -- interface stubs ------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        raise NotImplementedError

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        raise NotImplementedError

    def note_cancelled(self) -> None:
        raise NotImplementedError

    def peek(self) -> float:
        raise NotImplementedError

    def drain(self, stop_at: float) -> None:
        raise NotImplementedError

    def _pop_live(self) -> Optional[tuple[float, int, Event]]:
        raise NotImplementedError

    def live_entries(self) -> list[tuple[float, int, Event]]:
        raise NotImplementedError

    @property
    def queue_depth(self) -> int:
        raise NotImplementedError

    @property
    def dead_entries(self) -> int:
        return self._dead


class HeapScheduler(Scheduler):
    """Reference backend: binary heap + zero-delay deque.

    Exactly the pre-refactor kernel behaviour: O(log n) schedule into a
    ``(time, sequence, event)`` heap, O(1) zero-delay FIFO, lazy
    tombstone deletion with O(n) compaction when dead entries dominate.
    """

    name = "heap"

    __slots__ = ("_queue",)

    def __init__(self, env: "Environment", initial_time: float = 0.0):
        super().__init__(env, initial_time)
        self._queue: list[tuple[float, int, Event]] = []

    # -- scheduling -----------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing at ``now + delay``."""
        if delay == 0.0:
            # Fast path: zero-delay events (succeed/fail/resume) bypass
            # the heap.  FIFO order == sequence order, so the merged pop
            # order is exactly what one big heap would produce.
            seq = self._sequence + 1
            self._sequence = seq
            self._immediate.append((self._now, seq, event))
        elif delay > 0.0:
            seq = self._sequence + 1
            self._sequence = seq
            heappush(self._queue, (self._now + delay, seq, event))
        elif delay < 0:
            raise ValueError(
                f"cannot schedule into the past (delay={delay!r})"
            )
        else:
            # NaN passes neither == 0.0 nor < 0; it must never reach the
            # heap, where it would poison every tuple comparison.
            raise ValueError(
                f"cannot schedule at delay={delay!r}: NaN never compares, "
                "it would corrupt the queue order"
            )

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Pooled Timeout factory with the scheduling inlined.

        Pooled timers are clean at release, so only the per-use fields
        (``callbacks``, ``_value``, ``delay``) are written here.
        """
        free = self._free_timeouts
        if free and delay >= 0.0:  # NaN and negatives fall through
            timer = free.pop()
            timer._pooled = False
            timer.callbacks = []
            timer._value = value
            timer.delay = delay
            seq = self._sequence + 1
            self._sequence = seq
            if delay == 0.0:
                self._immediate.append((self._now, seq, timer))
            else:
                heappush(self._queue, (self._now + delay, seq, timer))
            self.pool.reused += 1
            return timer
        return Timeout(self.env, delay, value)

    # -- tombstones -----------------------------------------------------

    def note_cancelled(self) -> None:
        """A queued entry became a tombstone; compact when they dominate."""
        self._dead += 1
        if self._dead * 2 > len(self._queue) + len(self._immediate):
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstone in one pass.

        Containers are mutated **in place**: ``drain`` holds local
        aliases to both, and compaction can run mid-dispatch (a callback
        cancelling many timers).  Heapify keeps the live order — pops go
        by the unique ``(time, sequence)`` key either way.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2]._cancelled]
        heapify(queue)
        immediate = self._immediate
        if immediate:
            live = [e for e in immediate if not e[2]._cancelled]
            immediate.clear()
            immediate.extend(live)
        self._dead = 0

    # -- inspection -----------------------------------------------------

    def peek(self) -> float:
        """Time of the next *live* queued event, or ``inf`` if idle.

        Tombstoned entries at the head of either queue are discarded on
        the way: a cancelled timer's timestamp must never be acted on by
        ``run(until=...)`` or by harness drain loops.
        """
        immediate = self._immediate
        while immediate and immediate[0][2]._cancelled:
            immediate.popleft()
            self._dead -= 1
        queue = self._queue
        while queue and queue[0][2]._cancelled:
            heappop(queue)
            self._dead -= 1
        if immediate:
            if queue and queue[0] < immediate[0]:
                return queue[0][0]
            return immediate[0][0]
        return queue[0][0] if queue else _INFINITY

    def _pop_live(self) -> Optional[tuple[float, int, Event]]:
        immediate = self._immediate
        queue = self._queue
        while True:
            if immediate:
                if queue and queue[0] < immediate[0]:
                    entry = heappop(queue)
                else:
                    entry = immediate.popleft()
            elif queue:
                entry = heappop(queue)
            else:
                return None
            if entry[2]._cancelled:
                self._dead -= 1
                continue
            return entry

    def live_entries(self) -> list[tuple[float, int, Event]]:
        """Live entries in pop order (diagnostics and tests only)."""
        entries = [e for e in self._queue if not e[2]._cancelled]
        entries += [e for e in self._immediate if not e[2]._cancelled]
        entries.sort(key=lambda e: (e[0], e[1]))
        return entries

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + len(self._immediate) - self._dead

    # -- dispatch -------------------------------------------------------

    def drain(self, stop_at: float) -> None:
        """Process live entries until the clock would pass ``stop_at``.

        The loop is the kernel's hottest code: containers, pool lists and
        builtins are cached in locals, and each processed (or discarded)
        entry whose event is provably unreferenced — ``getrefcount`` sees
        only the entry tuple, the loop's local and the call argument —
        is recycled into the free lists.
        """
        immediate = self._immediate
        queue = self._queue
        pool = self.pool
        free_timeouts = pool.timeouts
        free_events = pool.events
        max_pooled = pool.max_size
        refs = getrefcount
        pop_heap = heappop
        while True:
            if immediate:
                if queue and queue[0] < immediate[0]:
                    entry = pop_heap(queue)
                else:
                    entry = immediate.popleft()
            elif queue:
                entry = pop_heap(queue)
            else:
                return
            time, _seq, event = entry
            if event._cancelled:
                # Tombstone: the entry being discarded was the last
                # queue-side reference, so the refcount proof applies.
                self._dead -= 1
                if (event.__class__ is Timeout and refs(event) == 3
                        and len(free_timeouts) < max_pooled):
                    event._cancelled = False  # clean at release
                    event._pooled = True
                    free_timeouts.append(event)
                continue
            if time > stop_at:
                # Beyond the horizon: the entry can only have come from
                # the heap (immediates are at or before ``now``), so push
                # it back untouched — same (time, sequence) key, same
                # order.
                heappush(queue, entry)
                return
            self._now = time
            callbacks = event.callbacks
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                # A failure nobody waited on: surface it, don't lose it.
                raise event.value
            cls = event.__class__
            if cls is Timeout:
                # A processed, uncancelled Timeout is already clean: it
                # can never have failed (it triggers at construction).
                if refs(event) == 3 and len(free_timeouts) < max_pooled:
                    event._pooled = True
                    free_timeouts.append(event)
            elif cls is Event:
                if refs(event) == 3 and len(free_events) < max_pooled:
                    if not event._ok or event._defused:
                        event._ok = True  # clean at release
                        event._defused = False
                    event._pooled = True
                    free_events.append(event)


class TimerScope:
    """Explicit acquire/settle lifecycle for guard and interval timers.

    Timer consumers used to pair every race with a hand-written
    ``timeout.cancel()`` on every exit path; a missed path leaked a live
    timer into the queue until its (often hours-away) deadline.  A scope
    makes the cancellation structural::

        with env.timers() as timers:
            guard = timers.acquire(block.ack_timeout)
            yield env.any_of([*acks, guard])
        # <- guard is cancelled here if it lost the race

    Because ``with`` runs ``__exit__`` on *any* unwind — including the
    ``GeneratorExit`` thrown when the kernel closes an interrupted
    process's generator, and the :class:`~repro.errors.Interrupt` thrown
    into it — acquired timers can never outlive the block that needed
    them, no matter how it ends.

    Scopes are reusable across loop iterations: :meth:`acquire` prunes
    timers that have already fired or been cancelled, so a heartbeat
    loop can hold one scope open for its whole life and still track only
    the current interval timer.
    """

    __slots__ = ("env", "active")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Timers acquired and not yet settled (pruned lazily).
        self.active: list[Timeout] = []

    def acquire(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout owned by this scope."""
        active = self.active
        if active:
            active[:] = [
                t for t in active
                if t.callbacks is not None and not t._cancelled
            ]
        timer = self.env.timeout(delay, value)
        active.append(timer)
        return timer

    def cancel(self, timer: Timeout) -> None:
        """Cancel and release one acquired timer early."""
        if timer.callbacks is not None and not timer._cancelled:
            timer.cancel()
        try:
            self.active.remove(timer)
        except ValueError:
            pass

    @property
    def pending(self) -> int:
        """Acquired timers that are still live (could still fire)."""
        return sum(
            1 for t in self.active
            if t.callbacks is not None and not t._cancelled
        )

    def settle(self) -> int:
        """Cancel every acquired timer that is still live.

        Returns the number of timers actually cancelled.  Idempotent —
        fired, already-cancelled and previously settled timers are
        skipped.
        """
        cancelled = 0
        for timer in self.active:
            if timer.callbacks is not None and not timer._cancelled:
                timer.cancel()
                cancelled += 1
        self.active.clear()
        return cancelled

    def __enter__(self) -> "TimerScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.settle()
        return False

    def __repr__(self) -> str:
        return f"<TimerScope pending={self.pending} at {id(self):#x}>"


def make_scheduler(
    env: "Environment",
    name: Optional[str] = None,
    initial_time: float = 0.0,
) -> Scheduler:
    """Build the scheduling backend for an environment.

    ``name`` may be ``"heap"``, ``"wheel"``, or None to consult the
    ``REPRO_SCHEDULER`` environment variable (default: wheel).
    """
    if name is None:
        name = os.environ.get(SCHEDULER_ENV_VAR, "") or DEFAULT_SCHEDULER
    key = name.strip().lower()
    if key == "heap":
        return HeapScheduler(env, initial_time)
    if key == "wheel":
        from repro.sim.wheel import WheelScheduler

        return WheelScheduler(env, initial_time)
    raise ConfigurationError(
        f"unknown scheduler {name!r}: expected 'heap' or 'wheel' "
        f"(set via Environment(scheduler=...) or ${SCHEDULER_ENV_VAR})"
    )
