"""Seeded random-number streams, split per subsystem.

Determinism rule: every stochastic component draws from its own named stream
derived from a single root seed.  Adding a new component (or reordering
draws inside one) therefore never perturbs the randomness seen by others,
which keeps regression baselines stable.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory of independent, reproducible random generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._generators: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-stream seed mixes the root seed with a CRC of the name, so
        streams are stable across runs and independent of creation order.
        """
        if name not in self._generators:
            child_seed = np.random.SeedSequence(
                [self.seed, zlib.crc32(name.encode("utf-8"))]
            )
            self._generators[name] = np.random.default_rng(child_seed)
        return self._generators[name]

    def __repr__(self) -> str:
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._generators)})"


def bounded_lognormal(
    rng: np.random.Generator,
    median: float,
    sigma: float,
    low: float,
    high: float,
) -> float:
    """Draw a lognormal latency with the given median, clipped to [low, high].

    Lognormal matches the long-tailed delivery delays the paper reports for
    email and SMS ("seconds to days"); clipping keeps simulations finite.
    """
    if median <= 0:
        raise ValueError(f"median must be positive, got {median!r}")
    value = rng.lognormal(mean=np.log(median), sigma=sigma)
    return float(min(max(value, low), high))
