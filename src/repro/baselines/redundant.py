"""Blanket redundancy: Aladdin's original delivery policy (§2.3).

"To minimize the potential problem of message loss and delay, Aladdin by
default sends all alerts as two emails and two cell phone SMS messages.
However, such heavy use of redundancy has not worked well.  For critical
alerts, there is still no guarantee that any of the four messages can reach
the user in time.  For less critical alerts, four messages per alert are
irritating and cumbersome."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.alert import Alert
from repro.core.user_endpoint import UserEndpoint
from repro.errors import ChannelError
from repro.net.email import EmailService
from repro.net.sms import SMSGateway

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class BlanketRedundantDelivery:
    """N duplicated emails + M duplicated SMS per alert, unconditionally."""

    def __init__(
        self,
        env: "Environment",
        email_service: EmailService,
        sms_gateway: SMSGateway,
        n_email: int = 2,
        n_sms: int = 2,
    ):
        if n_email < 0 or n_sms < 0 or n_email + n_sms == 0:
            raise ValueError("need at least one message per alert")
        self.env = env
        self.email_service = email_service
        self.sms_gateway = sms_gateway
        self.n_email = n_email
        self.n_sms = n_sms
        self.messages_sent = 0

    @property
    def name(self) -> str:
        return f"redundant-{self.n_email}em+{self.n_sms}sms"

    def deliver(self, alert: Alert, user: UserEndpoint) -> None:
        for _ in range(self.n_email):
            try:
                self.email_service.send(
                    alert.source,
                    user.email_address,
                    alert.subject,
                    alert.encode(),
                    correlation=alert.alert_id,
                )
                self.messages_sent += 1
            except ChannelError:
                pass  # fire-and-forget: the sender never learns
        for _ in range(self.n_sms):
            try:
                self.sms_gateway.send(
                    alert.source,
                    user.phone_number,
                    f"{alert.subject}: {alert.body}",
                    correlation=alert.alert_id,
                )
                self.messages_sent += 1
            except ChannelError:
                pass
