"""Baseline delivery strategies SIMBA is compared against.

- :class:`~repro.baselines.email_only.EmailOnlyDelivery` — the pre-SIMBA
  default: every alert is one email to the user (§3.1).
- :class:`~repro.baselines.redundant.BlanketRedundantDelivery` — Aladdin's
  original policy: "by default sends all alerts as two emails and two cell
  phone SMS messages.  However, such heavy use of redundancy has not worked
  well" (§2.3).

Both implement the same ``deliver(alert, user)`` interface as
:class:`~repro.baselines.simba_strategy.SimbaStrategy`, which routes through
a real MyAlertBuddy — so bench E8 can compare them head-to-head on
timeliness, delivery ratio and messages-per-alert (the irritation factor).
"""

from repro.baselines.email_only import EmailOnlyDelivery
from repro.baselines.redundant import BlanketRedundantDelivery
from repro.baselines.simba_strategy import SimbaStrategy

__all__ = [
    "BlanketRedundantDelivery",
    "EmailOnlyDelivery",
    "SimbaStrategy",
]
