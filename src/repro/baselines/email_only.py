"""Email-only delivery: the pre-SIMBA state of the art (§3.1).

"Most of the alerts today are delivered as email messages, which are not
suitable for delivering time-critical, high-importance alerts."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.alert import Alert
from repro.core.user_endpoint import UserEndpoint
from repro.net.email import EmailService

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class EmailOnlyDelivery:
    """One email per alert, straight to the user's mailbox."""

    name = "email-only"

    def __init__(self, env: "Environment", email_service: EmailService):
        self.env = env
        self.email_service = email_service
        self.messages_sent = 0

    def deliver(self, alert: Alert, user: UserEndpoint) -> None:
        self.email_service.send(
            alert.source,
            user.email_address,
            alert.subject,
            alert.encode(),
            correlation=alert.alert_id,
        )
        self.messages_sent += 1
