"""SIMBA as a delivery strategy, for head-to-head baseline comparison.

Wraps a real source endpoint + MyAlertBuddy deployment behind the same
``deliver(alert, user)`` interface as the baselines: the alert travels
source → MAB (IM-ack-then-email) → delivery-mode routing → user.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.alert import Alert, AlertSeverity
from repro.core.delivery_modes import im_ack_then_email
from repro.core.endpoint import SimbaEndpoint
from repro.core.pipeline import SourceDeliveryPipeline
from repro.core.user_endpoint import UserEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment
    from repro.world import BuddyDeployment


class SimbaStrategy:
    """Deliver through the full SIMBA pipeline.

    The source side is the shared
    :class:`~repro.core.pipeline.SourceDeliveryPipeline` (the same object
    the alert sources use); the MAB side is the deployment's own
    :class:`~repro.core.pipeline.AlertPipeline` running inside its buddy.

    The deployment must already have the user registered and categories
    subscribed; ``category_for_severity`` maps alert severities to the
    personal categories used in the bench (critical alerts ride the
    "critical" delivery mode, routine ones "normal").
    """

    name = "simba"

    def __init__(
        self,
        env: "Environment",
        source_endpoint: SimbaEndpoint,
        deployment: "BuddyDeployment",
        source_name: str = "bench-source",
    ):
        self.env = env
        self.endpoint = source_endpoint
        self.deployment = deployment
        self.source_name = source_name
        self.pipeline = SourceDeliveryPipeline(
            env, source_endpoint, im_ack_then_email()
        )

    @property
    def mode(self):
        return self.pipeline.mode

    @mode.setter
    def mode(self, mode) -> None:
        self.pipeline.mode = mode

    @property
    def outcomes(self):
        return self.pipeline.outcomes

    @property
    def messages_sent(self) -> int:
        return self.pipeline.messages_sent

    def deliver(self, alert: Alert, user: UserEndpoint) -> None:
        book = self.deployment.source_facing_book()
        self.env.process(
            self.pipeline.send(alert, book),
            name=f"simba-strategy-{alert.alert_id}",
        )

    @staticmethod
    def category_for_severity(severity: AlertSeverity) -> str:
        return "Critical" if severity is AlertSeverity.CRITICAL else "Routine"
