"""Design-choice ablations called out in DESIGN.md §5.

- **Ack-timeout sweep (A1)**: the block ``ack_timeout`` trades premature
  fallback (too small: acks still in flight when the block gives up →
  duplicate deliveries, wasted messages) against stall time when the
  receiver really is down (too large: every failure costs the full wait).
- **Log-write-latency sweep (A2)**: the pessimistic-log write sits on the
  ack path; the measured ack RTT should be one-way + write + one-way, which
  is exactly the decomposition behind the paper's 1.5 s figure.
- **Farm throughput sweep (A4)**: one MAB is a sequential daemon that
  saturates around 0.2 alerts/s; SIMBA scales by *multiplying daemons*,
  not by speeding one up.  The sweep runs a
  :class:`~repro.core.farm.BuddyFarm` at growing tenant counts and shows
  aggregate delivered throughput growing near-linearly with users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.delivery_modes import im_ack_then_email
from repro.core.farm import FarmProfile
from repro.metrics.stats import Summary, summarize
from repro.sim.clock import MINUTE
from repro.testkit.parallel import fanout
from repro.workloads.arrivals import poisson_arrival_times
from repro.world import SimbaWorld, WorldConfig


@dataclass
class AckTimeoutPoint:
    """One sweep point of experiment A1."""

    ack_timeout: float
    delivered_ratio: float
    premature_fallbacks: int
    fallbacks_during_outage: int
    duplicates_at_mab: int
    mean_source_latency: float


def run_ack_timeout_sweep(
    timeouts: tuple[float, ...] = (2.0, 5.0, 15.0, 60.0),
    n_alerts: int = 150,
    seed: int = 0,
) -> list[AckTimeoutPoint]:
    """A1: sweep the source→MAB ack timeout under periodic MAB hangs.

    Workload: one alert every 30 s; every 20 minutes the MAB process hangs
    until the MDC's probe restarts it (~1-4 minutes).  A hang is the case
    the timeout exists for: the IM *submission* succeeds (the client is
    still logged in) but no acknowledgement ever comes, so the block waits
    out its full ``ack_timeout`` before falling back.

    - Too small a timeout → *premature* fallbacks (and duplicate deliveries
      at MAB) while the IM path was actually healthy.
    - Too large a timeout → every hang-window alert stalls for the full
      wait before the email fallback fires (latency tail).
    """
    points = []
    for timeout in timeouts:
        world = SimbaWorld(WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0))
        user = world.create_user("alice", present=True)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("News", user, "normal", keywords=["News"])
        world.start_mdc(deployment, check_interval=60.0)
        source = world.create_source("portal")
        source.mode = im_ack_then_email(ack_timeout=timeout)
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")

        hang_windows: list[tuple[float, float]] = []

        def hangs(env):
            while True:
                yield env.timeout(20 * MINUTE)
                current = deployment.current
                if current is not None and current.alive:
                    start = env.now
                    current.hang()
                    hang_windows.append((start, start + 4 * MINUTE))

        def emitter(env):
            for index in range(n_alerts):
                source.emit("News", f"h{index}", "b")
                yield env.timeout(30.0)

        world.env.process(hangs(world.env))
        world.env.process(emitter(world.env))
        world.run(until=n_alerts * 30.0 + 30 * MINUTE)

        premature = during_outage = 0
        latencies = []
        for outcome in source.outcomes:
            latencies.append(outcome.elapsed)
            if outcome.delivered_via == 1:
                started = outcome.started_at
                in_outage = any(
                    start - timeout <= started <= end + 60.0
                    for start, end in hang_windows
                )
                if in_outage:
                    during_outage += 1
                else:
                    premature += 1
        points.append(
            AckTimeoutPoint(
                ack_timeout=timeout,
                delivered_ratio=(
                    sum(1 for o in source.outcomes if o.delivered)
                    / len(source.outcomes)
                ),
                premature_fallbacks=premature,
                fallbacks_during_outage=during_outage,
                duplicates_at_mab=deployment.journal.count(
                    "duplicate_incoming"
                ),
                mean_source_latency=summarize(latencies).mean,
            )
        )
    return points


@dataclass
class LogLatencyPoint:
    """One sweep point of experiment A2."""

    write_latency: float
    ack_rtt: Summary


def run_log_latency_sweep(
    write_latencies: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0),
    n_alerts: int = 120,
    seed: int = 0,
) -> list[LogLatencyPoint]:
    """A2: ack RTT as a function of the pessimistic-log write latency."""
    points = []
    for write_latency in write_latencies:
        world = SimbaWorld(
            WorldConfig(seed=seed, log_write_latency=write_latency)
        )
        user = world.create_user("alice", present=True)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("News", user, "normal", keywords=["News"])
        deployment.launch()
        source = world.create_source("portal")
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")

        def emitter(env):
            for index in range(n_alerts):
                source.emit("News", f"h{index}", "b")
                yield env.timeout(20.0)

        world.env.process(emitter(world.env))
        world.run(until=n_alerts * 20.0 + 5 * MINUTE)
        rtts = [
            outcome.blocks[0].elapsed
            for outcome in source.outcomes
            if outcome.delivered_via == 0
        ]
        points.append(
            LogLatencyPoint(
                write_latency=write_latency, ack_rtt=summarize(rtts)
            )
        )
    return points


@dataclass
class FarmThroughputPoint:
    """One sweep point of the A4 farm-scaling experiment."""

    users: int
    offered: int
    delivered: int
    duration: float
    on_time_ratio: float
    latency: Summary

    @property
    def aggregate_rate(self) -> float:
        """Delivered alerts/s across the whole farm."""
        return self.delivered / self.duration


def _farm_throughput_point(spec: dict) -> FarmThroughputPoint:
    """One sweep point (one farm size) — module-level so the A4 sweep can
    fan points out across a process pool."""
    n_users = spec["n_users"]
    per_user_rate = spec["per_user_rate"]
    duration = spec["duration"]
    on_time = spec["on_time"]
    seed = spec["seed"]
    world = SimbaWorld(
        WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0)
    )
    farm = world.create_farm(
        profile=FarmProfile(accept_sources=("portal",))
    )
    farm.add_users(n_users)
    source = world.create_source("portal")
    farm.register_with(source)
    farm.launch_all()

    arrivals = sorted(
        (at, tenant.index)
        for tenant in farm
        for at in poisson_arrival_times(
            world.rngs.stream(f"arrivals-{tenant.name}"),
            rate=per_user_rate,
            duration=duration,
        )
    )

    def emitter(env, arrivals=arrivals):
        for at, index in arrivals:
            if at > env.now:
                yield env.timeout(at - env.now)
            tenant = farm.tenant_at(index)
            source.emit_to(tenant.book, "News", f"h{env.now:.0f}", "b")

    world.env.process(emitter(world.env), name="farm-emitter")
    # Generous drain window so queued alerts can finish.
    world.run(until=duration + 30 * MINUTE)

    received = farm.receipts(unique=True)
    latencies = [r.latency for r in received]
    return FarmThroughputPoint(
        users=n_users,
        offered=len(arrivals),
        delivered=len(received),
        duration=duration,
        on_time_ratio=(
            sum(1 for lat in latencies if lat <= on_time)
            / len(arrivals)
            if arrivals
            else 0.0
        ),
        latency=summarize(latencies),
    )


def run_farm_throughput_sweep(
    user_counts: tuple[int, ...] = (1, 10, 50, 100),
    per_user_rate: float = 0.12,
    duration: float = 10 * MINUTE,
    on_time: float = 60.0,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> list[FarmThroughputPoint]:
    """A4 (farm): aggregate throughput as the tenant count grows.

    Each tenant receives its own Poisson stream at ``per_user_rate`` —
    comfortably below the single-daemon ceiling — so any throughput limit
    the sweep finds is architectural, not per-user overload.  Per-user
    arrival streams come from the world's named RNG registry, so the
    workload for user *k* is identical at every farm size — and every
    sweep point is a fully independent world, so ``jobs > 1`` runs points
    in parallel processes with results merged in ``user_counts`` order.
    """
    specs = [
        dict(
            n_users=n_users,
            per_user_rate=per_user_rate,
            duration=duration,
            on_time=on_time,
            seed=seed,
        )
        for n_users in user_counts
    ]
    return fanout(_farm_throughput_point, specs, jobs=jobs)
