"""Design-choice ablations called out in DESIGN.md §5.

- **Ack-timeout sweep (A1)**: the block ``ack_timeout`` trades premature
  fallback (too small: acks still in flight when the block gives up →
  duplicate deliveries, wasted messages) against stall time when the
  receiver really is down (too large: every failure costs the full wait).
- **Log-write-latency sweep (A2)**: the pessimistic-log write sits on the
  ack path; the measured ack RTT should be one-way + write + one-way, which
  is exactly the decomposition behind the paper's 1.5 s figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delivery_modes import im_ack_then_email
from repro.metrics.stats import Summary, summarize
from repro.sim.clock import MINUTE
from repro.world import SimbaWorld, WorldConfig


@dataclass
class AckTimeoutPoint:
    """One sweep point of experiment A1."""

    ack_timeout: float
    delivered_ratio: float
    premature_fallbacks: int
    fallbacks_during_outage: int
    duplicates_at_mab: int
    mean_source_latency: float


def run_ack_timeout_sweep(
    timeouts: tuple[float, ...] = (2.0, 5.0, 15.0, 60.0),
    n_alerts: int = 150,
    seed: int = 0,
) -> list[AckTimeoutPoint]:
    """A1: sweep the source→MAB ack timeout under periodic MAB hangs.

    Workload: one alert every 30 s; every 20 minutes the MAB process hangs
    until the MDC's probe restarts it (~1-4 minutes).  A hang is the case
    the timeout exists for: the IM *submission* succeeds (the client is
    still logged in) but no acknowledgement ever comes, so the block waits
    out its full ``ack_timeout`` before falling back.

    - Too small a timeout → *premature* fallbacks (and duplicate deliveries
      at MAB) while the IM path was actually healthy.
    - Too large a timeout → every hang-window alert stalls for the full
      wait before the email fallback fires (latency tail).
    """
    points = []
    for timeout in timeouts:
        world = SimbaWorld(WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0))
        user = world.create_user("alice", present=True)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("News", user, "normal", keywords=["News"])
        world.start_mdc(deployment, check_interval=60.0)
        source = world.create_source("portal")
        source.mode = im_ack_then_email(ack_timeout=timeout)
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")

        hang_windows: list[tuple[float, float]] = []

        def hangs(env):
            while True:
                yield env.timeout(20 * MINUTE)
                current = deployment.current
                if current is not None and current.alive:
                    start = env.now
                    current.hang()
                    hang_windows.append((start, start + 4 * MINUTE))

        def emitter(env):
            for index in range(n_alerts):
                source.emit("News", f"h{index}", "b")
                yield env.timeout(30.0)

        world.env.process(hangs(world.env))
        world.env.process(emitter(world.env))
        world.run(until=n_alerts * 30.0 + 30 * MINUTE)

        premature = during_outage = 0
        latencies = []
        for outcome in source.outcomes:
            latencies.append(outcome.elapsed)
            if outcome.delivered_via == 1:
                started = outcome.started_at
                in_outage = any(
                    start - timeout <= started <= end + 60.0
                    for start, end in hang_windows
                )
                if in_outage:
                    during_outage += 1
                else:
                    premature += 1
        points.append(
            AckTimeoutPoint(
                ack_timeout=timeout,
                delivered_ratio=(
                    sum(1 for o in source.outcomes if o.delivered)
                    / len(source.outcomes)
                ),
                premature_fallbacks=premature,
                fallbacks_during_outage=during_outage,
                duplicates_at_mab=deployment.journal.count(
                    "duplicate_incoming"
                ),
                mean_source_latency=summarize(latencies).mean,
            )
        )
    return points


@dataclass
class LogLatencyPoint:
    """One sweep point of experiment A2."""

    write_latency: float
    ack_rtt: Summary


def run_log_latency_sweep(
    write_latencies: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0),
    n_alerts: int = 120,
    seed: int = 0,
) -> list[LogLatencyPoint]:
    """A2: ack RTT as a function of the pessimistic-log write latency."""
    points = []
    for write_latency in write_latencies:
        world = SimbaWorld(
            WorldConfig(seed=seed, log_write_latency=write_latency)
        )
        user = world.create_user("alice", present=True)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("News", user, "normal", keywords=["News"])
        deployment.launch()
        source = world.create_source("portal")
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")

        def emitter(env):
            for index in range(n_alerts):
                source.emit("News", f"h{index}", "b")
                yield env.timeout(20.0)

        world.env.process(emitter(world.env))
        world.run(until=n_alerts * 20.0 + 5 * MINUTE)
        rtts = [
            outcome.blocks[0].elapsed
            for outcome in source.outcomes
            if outcome.delivered_via == 0
        ]
        points.append(
            LogLatencyPoint(
                write_latency=write_latency, ack_rtt=summarize(rtts)
            )
        )
    return points
