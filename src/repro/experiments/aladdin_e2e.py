"""Experiment E4: the Aladdin end-to-end chain (§5).

"From the time the button on the remote control was pushed to the time an
IM popped up on the user's screen, the end-to-end delivery took an average
of 11 seconds."  The chain: RF remote → powerline transceiver → powerline
monitor → local SSS → phoneline multicast → gateway SSS event → Aladdin home
server → SIMBA (IM-ack to MAB, routed to the user's IM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aladdin.scenario import AladdinHome
from repro.metrics.stats import Summary, summarize
from repro.net.message import ChannelType
from repro.sim.clock import MINUTE
from repro.world import SimbaWorld


@dataclass
class AladdinE2EResult:
    """Per-hop and end-to-end latency summaries."""

    end_to_end: Summary
    press_to_gateway_alert: Summary
    simba_delivery: Summary
    presses: int
    receipts: int


def run_aladdin_disarm(
    n_presses: int = 60, seed: int = 0, press_period: float = 187.3
) -> AladdinE2EResult:
    # The default period is deliberately incommensurate with the powerline
    # monitor's poll interval, so presses sample the poll phase uniformly
    # instead of locking onto one residue.
    """Repeat the disarm/arm scenario and measure press → user-IM latency."""
    world = SimbaWorld(seed=seed)
    user = world.create_user("parent", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe(
        "Home Security",
        user,
        "normal",
        keywords=["Security Armed", "Security Disarmed"],
    )
    deployment.launch()
    deployment.config.classifier.accept_source("aladdin")

    endpoint = world.create_source_endpoint("aladdin")
    home = AladdinHome(world.env, world.rngs, endpoint)
    home.gateway.add_target(deployment.source_facing_book())

    press_times: list[float] = []

    def kid(env):
        yield env.timeout(30.0)
        for index in range(n_presses):
            press_times.append(env.now)
            if index % 2 == 0:
                home.disarm_via_remote()
            else:
                home.arm_via_remote()
            yield env.timeout(press_period)

    world.env.process(kid(world.env))
    world.run(until=30.0 + n_presses * press_period + 5 * MINUTE)

    # Alerts and receipts occur strictly in press order (press period >>
    # chain latency), so zip aligns them.
    receipts = [r for r in user.receipts if not r.duplicate]
    end_to_end = [
        receipt.at - press
        for press, receipt in zip(press_times, receipts)
        if receipt.channel is ChannelType.IM
    ]
    press_to_alert = [
        alert.created_at - press
        for press, alert in zip(press_times, home.gateway.emitted)
    ]
    simba_leg = [
        receipt.at - alert.created_at
        for alert, receipt in zip(home.gateway.emitted, receipts)
    ]
    return AladdinE2EResult(
        end_to_end=summarize(end_to_end),
        press_to_gateway_alert=summarize(press_to_alert),
        simba_delivery=summarize(simba_leg),
        presses=len(press_times),
        receipts=len(receipts),
    )
