"""Experiment E14: naive vs stabilizing transport on one adversary schedule.

The SIMBA architecture's dependability story (§4–5) assumes the pipes
between replicas behave; Dolev, Dubois, Potop-Butucaru & Tixeuil's
stabilizing exactly-once results say what it actually takes when they
don't — non-FIFO reordering, retransmit amplification, in-flight
corruption.  This experiment quantifies that gap on the replication ship
links: one seeded fault schedule whose adversary pulses (reorder /
duplicate / corrupt windows) target every pair's link, replayed
bit-identically against two farms —

- ``naive`` — the pre-PR transport: frames are applied as they arrive,
  every duplicate copy re-applied, every corrupt frame accepted.  The
  damage is *counted* (:class:`~repro.core.stabilizing.NaiveReceiver`),
  so the baseline is measurable, not hypothetical.
- ``stabilizing`` — :class:`~repro.core.stabilizing.StabilizingSender` /
  ``StabilizingReceiver``: CRC32 verification with a bounded corrupt-NACK
  resend loop, and per-peer monotone-watermark dedup.

Per variant we report delivered counts, the transport audit (corrupt
accepts, duplicate applies, and the rejected/dropped mirror image),
resend volume, the convergence point (when the unshipped queues last
drained, relative to the fault window), and the oracle's verdict — the
three transport invariants (``no_corrupt_accepted``,
``stabilized_exactly_once``, ``convergence_bounded``) turn the ablation
into a pass/fail statement.

Both variants are independent worlds over the same schedule, so
``jobs=2`` runs them in parallel worker processes with byte-identical
results (the CI ``adversarial-smoke`` job diffs the two modes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.stabilizing import TRANSPORT_KINDS
from repro.sim.clock import HOUR, MINUTE
from repro.sim.failures import ScheduledFault
from repro.testkit.generator import (
    ADVERSARY_FAULT_KINDS,
    ChaosIntensity,
    FaultScheduleGenerator,
)
from repro.testkit.harness import ChaosRunConfig, run_chaos
from repro.testkit.parallel import fanout
from repro.workloads.faultload import TARGET_REPLICATION_LINK

#: The two transports compared, baseline first.
VARIANTS = tuple(reversed(TRANSPORT_KINDS))  # ("naive", "stabilizing")

#: Fault pressure matching the property tier's farm sweep.
E14_INTENSITY = ChaosIntensity(faults_per_hour=30.0)

TRANSPORT_INVARIANTS = (
    "no_corrupt_accepted",
    "stabilized_exactly_once",
    "convergence_bounded",
)


def adversarial_schedule(
    seed: int,
    users: list[str],
    duration: float = HOUR,
    intensity: Optional[ChaosIntensity] = None,
) -> list[ScheduledFault]:
    """A generator schedule whose adversary pulses target ship links only.

    The full benign fault mix is kept (crashes, outages, link downtime —
    the transport must hold up *during* failovers, not beside them);
    substrate-level adversary pulses are filtered out because they stress
    the user-facing IM/email path, which is outside the record transport's
    contract.
    """
    schedule = FaultScheduleGenerator(
        seed=seed,
        users=users,
        duration=duration,
        intensity=intensity if intensity is not None else E14_INTENSITY,
        replication=True,
        adversarial=True,
    ).generate()
    return [
        f
        for f in schedule
        if f.kind not in ADVERSARY_FAULT_KINDS
        or f.target.startswith(f"{TARGET_REPLICATION_LINK}:")
    ]


@dataclass
class AdversarialVariant:
    """One transport's behaviour under the shared adversary schedule."""

    name: str
    offered: int
    delivered: int
    #: Records framed and shipped across all pair sides.
    shipped: int
    #: Corrupt frames applied to a standby log (must be 0 stabilizing).
    corrupt_accepts: int
    #: Duplicate frames re-applied (must be 0 stabilizing).
    duplicate_applies: int
    #: The stabilizing mirror image: NACKed corrupt frames and dropped
    #: duplicate copies (both 0 for the naive baseline by construction).
    corrupt_rejected: int
    duplicate_dropped: int
    #: Corrupt-NACK resend rounds spent inside ship round trips.
    resends: int
    #: Sim time the unshipped queues last drained.
    converged_at: float
    #: Drain lag past the fault window (0 = converged before it closed).
    convergence_lag: float
    violations: list[str] = field(default_factory=list)

    @property
    def transport_violations(self) -> list[str]:
        return [
            v
            for v in self.violations
            if any(v.startswith(inv) for inv in TRANSPORT_INVARIANTS)
        ]


@dataclass
class AdversarialResult:
    """Both transports under one adversary schedule."""

    seed: int
    schedule: list[ScheduledFault]
    fault_window_end: float
    variants: list[AdversarialVariant] = field(default_factory=list)

    def variant(self, name: str) -> AdversarialVariant:
        for v in self.variants:
            if v.name == name:
                return v
        raise KeyError(name)

    @property
    def ok(self) -> bool:
        """The E14 claim: on the identical schedule the stabilizing
        transport accepts zero corrupt frames and re-applies zero
        duplicates with no transport-invariant violations, while the
        naive baseline demonstrably does damage."""
        stabilizing = self.variant("stabilizing")
        naive = self.variant("naive")
        return (
            stabilizing.corrupt_accepts == 0
            and stabilizing.duplicate_applies == 0
            and not stabilizing.transport_violations
            and (naive.corrupt_accepts > 0 or naive.duplicate_applies > 0)
        )


def _run_variant(
    variant: str,
    seed: int,
    schedule: list[ScheduledFault],
    n_users: int,
    duration: float,
) -> AdversarialVariant:
    config = ChaosRunConfig(
        seed=seed,
        n_users=n_users,
        duration=duration,
        replication=True,
        transport=variant,
    )
    report = run_chaos(schedule, config)
    info = report.oracle.info
    fault_window_end = max(
        [config.start + config.duration]
        + [f.at + f.duration for f in schedule]
    )
    converged_at = float(info.get("transport_converged_at", 0.0))
    return AdversarialVariant(
        name=variant,
        offered=sum(report.offered.values()),
        delivered=sum(report.delivered.values()),
        shipped=report.oracle.checked.get("transport_shipped", 0),
        corrupt_accepts=info.get("corrupt_accepted", 0),
        duplicate_applies=info.get("duplicate_applied", 0),
        corrupt_rejected=info.get("corrupt_rejected", 0),
        duplicate_dropped=info.get("duplicate_dropped", 0),
        resends=info.get("transport_resends", 0),
        converged_at=converged_at,
        convergence_lag=max(0.0, converged_at - fault_window_end),
        violations=[str(v) for v in report.oracle.violations],
    )


def _variant_worker(spec: dict) -> AdversarialVariant:
    """Picklable wrapper so variant runs can cross a process boundary."""
    return _run_variant(**spec)


def run_adversarial_comparison(
    seed: int = 0,
    n_users: int = 2,
    duration: float = HOUR,
    schedule: Optional[list[ScheduledFault]] = None,
    variants: tuple = VARIANTS,
    jobs: Optional[int] = None,
) -> AdversarialResult:
    """Replay one adversary schedule against each transport in ``variants``.

    The schedule is identical by construction (both variants receive the
    same list), and each variant is an independent world — ``jobs > 1``
    runs them in parallel worker processes; results come back in
    ``variants`` order either way (None → ``REPRO_SWEEP_JOBS`` default).
    """
    users = [f"user{i}" for i in range(n_users)]
    if schedule is None:
        schedule = adversarial_schedule(seed, users, duration=duration)
    specs = [
        dict(
            variant=variant,
            seed=seed,
            schedule=schedule,
            n_users=n_users,
            duration=duration,
        )
        for variant in variants
    ]
    fault_window_end = max(
        [5 * MINUTE + duration] + [f.at + f.duration for f in schedule]
    )
    return AdversarialResult(
        seed=seed,
        schedule=list(schedule),
        fault_window_end=fault_window_end,
        variants=fanout(_variant_worker, specs, jobs=jobs),
    )
