"""Experiment E10: randomized chaos search over fault schedules.

The §5 evaluation replays *one* month-long trace; this experiment searches
many adversarial traces.  ``run_chaos_experiment`` wraps
:func:`repro.testkit.chaos_sweep` with reporting and reproducer pinning;
the module is also a CLI (the CI chaos-smoke job drives it)::

    python -m repro.experiments.chaos --seed 7 --trials 5
    python -m repro.experiments.chaos --replay tests/data/chaos/*.json
    python -m repro.experiments.chaos --equivalence

Exit status is 0 only when every trial (or replay) satisfies the delivery
oracle, so the command doubles as an assertion.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.metrics.invariant_report import sweep_report
from repro.sim.clock import MINUTE
from repro.testkit import (
    ChaosIntensity,
    ChaosSweepResult,
    chaos_sweep,
    check_farm_equivalence,
    dump_reproducer,
    replay_reproducer,
)


@dataclass
class ChaosExperimentResult:
    """One sweep plus where any shrunk reproducers were pinned."""

    sweep: ChaosSweepResult
    pinned: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.sweep.ok


def run_chaos_experiment(
    seed: int = 0,
    trials: int = 5,
    n_users: int = 3,
    duration: float = 40 * MINUTE,
    settle: float = 18 * MINUTE,
    faults_per_hour: float = 8.0,
    pin_dir: Optional[Path] = None,
    jobs: Optional[int] = None,
) -> ChaosExperimentResult:
    """Run one seeded sweep; pin shrunk reproducers of failing trials.

    ``jobs`` fans trials across worker processes (see
    :func:`repro.testkit.parallel.fanout`); the sweep result — fingerprint
    included — is identical to a sequential run's.
    """
    intensity = ChaosIntensity(faults_per_hour=faults_per_hour)
    sweep = chaos_sweep(
        seed=seed,
        trials=trials,
        n_users=n_users,
        duration=duration,
        settle=settle,
        intensity=intensity,
        jobs=jobs,
    )
    result = ChaosExperimentResult(sweep=sweep)
    if pin_dir is not None:
        for trial in sweep.failures:
            if trial.reproducer is None:
                continue
            path = Path(pin_dir) / f"seed{seed}_trial{trial.index}.json"
            result.pinned.append(dump_reproducer(trial.reproducer, path))
    return result


def replay_pinned(paths: list[Path]) -> list[tuple[Path, bool]]:
    """Replay pinned reproducers against the current pipeline."""
    verdicts = []
    for path in paths:
        report = replay_reproducer(path)
        verdicts.append((Path(path), report.ok))
    return verdicts


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.chaos",
        description="Randomized fault-schedule search with a delivery oracle.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--users", type=int, default=3)
    parser.add_argument(
        "--duration-minutes", type=float, default=40.0,
        help="fault-window length per trial (simulated minutes)",
    )
    parser.add_argument(
        "--settle-minutes", type=float, default=18.0,
        help="quiesce time after the last fault clears",
    )
    parser.add_argument("--faults-per-hour", type=float, default=8.0)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweep (default: REPRO_SWEEP_JOBS or 1)",
    )
    parser.add_argument(
        "--pin-dir", type=Path, default=None,
        help="write shrunk reproducers of failing trials here",
    )
    parser.add_argument(
        "--replay", type=Path, nargs="+", default=None,
        help="replay pinned reproducer file(s) instead of sweeping",
    )
    parser.add_argument(
        "--equivalence", action="store_true",
        help="also check farm-vs-solo event equivalence",
    )
    args = parser.parse_args(argv)

    ok = True
    if args.replay:
        for path, verdict in replay_pinned(args.replay):
            print(f"replay {path}: {'PASS' if verdict else 'FAIL'}")
            ok = ok and verdict
    else:
        result = run_chaos_experiment(
            seed=args.seed,
            trials=args.trials,
            n_users=args.users,
            duration=args.duration_minutes * MINUTE,
            settle=args.settle_minutes * MINUTE,
            faults_per_hour=args.faults_per_hour,
            pin_dir=args.pin_dir,
            jobs=args.jobs,
        )
        print(sweep_report(result.sweep))
        for path in result.pinned:
            print(f"pinned reproducer: {path}")
        ok = ok and result.ok

    if args.equivalence:
        report = check_farm_equivalence()
        print(
            "farm equivalence: "
            + ("PASS" if report.equivalent else "FAIL")
        )
        for mismatch in report.mismatches:
            print(f"  ! {mismatch}")
        ok = ok and report.equivalent
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
