"""Experiment E7: the commercial-portal usage-log aggregates (§1).

"...on average around 225 thousands of people received around 778 thousands
of alerts every day from that site."

Two parts:

1. **Aggregate reproduction** — generate a full-scale synthetic week and
   report alerts/day and distinct users/day, which should land on the
   paper's numbers by construction (the generator is calibrated, the check
   is that the pipeline preserves them).
2. **Replay through real MABs** — scale the population down, deploy a
   :class:`~repro.core.farm.BuddyFarm` of actual MyAlertBuddies (hundreds
   of tenants on one kernel), replay a day of the log through the full
   source→MAB→user stack, and report delivery ratio and latency.  Each log
   record addresses one recipient, so emission uses the farm's O(1)
   tenant routing and the source's public single-recipient delivery —
   no broadcast over targets, no private APIs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.farm import FarmProfile
from repro.metrics.stats import Summary, summarize
from repro.sim.clock import DAY, MINUTE
from repro.workloads.portal_log import LogRecord, PortalLogGenerator
from repro.world import SimbaWorld


@dataclass
class PortalScaleResult:
    """Full-scale aggregates plus the scaled replay outcome."""

    days: int
    mean_alerts_per_day: float
    mean_users_per_day: float
    alerts_per_user: float
    replay_users: int
    replay_alerts: int
    replay_received: int
    replay_latency: Summary

    @property
    def replay_delivery_ratio(self) -> float:
        if self.replay_alerts == 0:
            return float("nan")
        return self.replay_received / self.replay_alerts

    @property
    def replay_throughput(self) -> float:
        """Aggregate delivered alerts/s over the replayed day."""
        return self.replay_received / DAY


def run_portal_log(
    seed: int = 0,
    full_scale_days: int = 7,
    replay_users: int = 500,
    replay_alerts_target: int = 1750,
) -> PortalScaleResult:
    """Generate the full-scale log, then replay a scaled day through MABs."""
    world = SimbaWorld(seed=seed)
    generator = PortalLogGenerator(world.rngs.stream("portal-log"))

    totals = []
    for day in range(full_scale_days):
        records = generator.generate_day(day)
        totals.append(PortalLogGenerator.daily_summary(records))
    mean_alerts = sum(t["alerts"] for t in totals) / len(totals)
    mean_users = sum(t["distinct_users"] for t in totals) / len(totals)

    # ------------------------------------------------------------------
    # Scaled replay through a farm of real MyAlertBuddies.
    # ------------------------------------------------------------------
    scaled = PortalLogGenerator(
        world.rngs.stream("portal-replay"),
        n_users=replay_users,
        alerts_per_day=replay_alerts_target,
    )
    day_records: list[LogRecord] = scaled.generate_day(0)

    source = world.create_source("portal")
    farm = world.create_farm(
        profile=FarmProfile(
            categories=tuple(scaled.categories),
            accept_sources=("portal",),
            # Spread startup so hundreds of per-tenant maintenance timers
            # do not tick in lockstep at the top of every minute.
            launch_stagger=60.0,
        )
    )
    farm.add_users(replay_users)
    farm.launch_all()

    def replayer(env):
        for record in day_records:
            if record.at > env.now:
                yield env.timeout(record.at - env.now)
            tenant = farm.tenant_at(record.user_id)
            source.emit_to(
                tenant.book,
                record.category,
                f"{record.category} alert",
                f"log replay at {record.at:.0f}",
            )

    world.env.process(replayer(world.env), name="portal-replayer")
    world.run(until=DAY + 30 * MINUTE)

    receipts = farm.receipts(unique=True)
    return PortalScaleResult(
        days=full_scale_days,
        mean_alerts_per_day=mean_alerts,
        mean_users_per_day=mean_users,
        alerts_per_user=mean_alerts / mean_users if mean_users else 0.0,
        replay_users=replay_users,
        replay_alerts=len(day_records),
        replay_received=len(receipts),
        replay_latency=summarize([r.latency for r in receipts]),
    )
