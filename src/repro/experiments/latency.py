"""Experiments E1–E3: the §5 latency measurements.

- E1: "The one-way IM delivery time from any of the alert sources to
  MyAlertBuddy is typically less than one second."
- E2: "With pessimistic logging, the alert source receives an
  acknowledgement in about 1.5 seconds."
- E3: "An alert proxy was set up to monitor the Florida recount numbers and
  the availability of the PlayStation2 game consoles ...  When the proxy
  detected a change, it sent out an alert, which on average took 2.5 seconds
  to route through MyAlertBuddy to reach the user."
"""

from __future__ import annotations

from repro.metrics.stats import Summary, summarize
from repro.net.message import ChannelType
from repro.sim.clock import MINUTE
from repro.sources.proxy import AlertProxy, ProxyRule
from repro.sources.webserver import SimulatedWebSite
from repro.world import SimbaWorld


def _standard_stack(seed: int):
    """World + present user + configured MAB + accepted portal source."""
    world = SimbaWorld(seed=seed)
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe("News", user, "normal", keywords=["News", "Election",
                                                           "Shopping"])
    deployment.launch()
    return world, user, deployment


def _instrument_one_way(deployment, samples: list) -> None:
    """Wrap the incarnation's pre-ack hook to record source→MAB one-way IM
    latency.  Wrapping the method (not the endpoint attribute) matters: the
    buddy re-installs ``self._pre_ack`` on the endpoint when it starts."""
    buddy = deployment.current
    original = buddy._pre_ack

    def hooked(incoming):
        if incoming.via is ChannelType.IM:
            samples.append(incoming.received_at - incoming.alert.created_at)
        yield from original(incoming)

    buddy._pre_ack = hooked


def run_im_one_way(n_alerts: int = 300, seed: int = 0) -> Summary:
    """E1: one-way source→MAB IM latency distribution."""
    world, user, deployment = _standard_stack(seed)
    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")
    samples: list[float] = []
    _instrument_one_way(deployment, samples)

    def emitter(env):
        for index in range(n_alerts):
            source.emit("News", f"headline {index}", "body")
            yield env.timeout(20.0)

    world.env.process(emitter(world.env))
    world.run(until=n_alerts * 20.0 + 5 * MINUTE)
    return summarize(samples)


def run_ack_roundtrip(n_alerts: int = 300, seed: int = 0) -> Summary:
    """E2: source-side ack latency with pessimistic logging enabled."""
    world, user, deployment = _standard_stack(seed)
    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")

    def emitter(env):
        for index in range(n_alerts):
            source.emit("News", f"headline {index}", "body")
            yield env.timeout(20.0)

    world.env.process(emitter(world.env))
    world.run(until=n_alerts * 20.0 + 5 * MINUTE)
    samples = [
        outcome.blocks[0].elapsed
        for outcome in source.outcomes
        if outcome.delivered_via == 0
    ]
    return summarize(samples)


def run_proxy_routing(
    n_changes: int = 120, seed: int = 0, change_period: float = 2 * MINUTE
) -> Summary:
    """E3: proxy change detection → MAB → user, measured at the user's IM.

    Reproduces the paper's two watched pages: the Florida recount and the
    PlayStation2 availability page.
    """
    world, user, deployment = _standard_stack(seed)
    proxy = AlertProxy(world.env, "proxy", world.create_source_endpoint("proxy"))
    proxy.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("proxy")

    cnn = SimulatedWebSite(world.env, "cnn.com")
    cnn.publish("/florida", "<votes>Gore 2907351 Bush 2907888</votes>")
    shop = SimulatedWebSite(world.env, "shop.com")
    shop.publish("/ps2", "<stock>SOLD OUT</stock>")
    proxy.add_rule(
        ProxyRule(cnn, "/florida", 10.0, "<votes>", "</votes>", "Election")
    )
    proxy.add_rule(ProxyRule(shop, "/ps2", 10.0, "<stock>", "</stock>", "Shopping"))
    proxy.start()

    cnn.schedule_updates(
        "/florida",
        [
            (30.0 + i * change_period, f"<votes>recount update {i}</votes>")
            for i in range(n_changes // 2)
        ],
    )
    shop.schedule_updates(
        "/ps2",
        [
            (
                90.0 + i * change_period,
                f"<stock>{'IN STOCK' if i % 2 else 'SOLD OUT'} run {i}</stock>",
            )
            for i in range(n_changes // 2)
        ],
    )
    world.run(until=(n_changes // 2) * change_period + 10 * MINUTE)
    samples = [
        receipt.latency
        for receipt in user.receipts
        if receipt.channel is ChannelType.IM and not receipt.duplicate
    ]
    return summarize(samples)
