"""Experiment E8: SIMBA delivery modes vs the two baselines (§2.3/§3.1).

The paper's argument, quantified: blanket redundancy (Aladdin's original two
emails + two SMS) gives "no guarantee that any of the four messages can
reach the user in time" for critical alerts while being "irritating and
cumbersome" for routine ones; email-only is neither timely nor reliable;
SIMBA's ack-or-fallback modes deliver critical alerts fast when the user is
reachable and degrade gracefully when not, at close to one message per
alert.

Each strategy gets an identical user (presence schedule, phone, mailbox)
and an identical alert schedule, in one shared world with lossy channels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    BlanketRedundantDelivery,
    EmailOnlyDelivery,
    SimbaStrategy,
)
from repro.core.alert import Alert, AlertSeverity
from repro.core.user_endpoint import UserEndpoint
from repro.metrics.stats import Summary, summarize
from repro.sim.clock import HOUR, MINUTE
from repro.world import SimbaWorld, WorldConfig

#: An alert is "on time" if a copy reaches any user device within this many
#: seconds — a basement flooding or an outbid auction is worthless an hour
#: later.  15 s is generous for IM and harsh for store-and-forward channels,
#: which is exactly the §3.1 argument.
ON_TIME_DEADLINE = 15.0


@dataclass
class StrategyMetrics:
    """What E8 reports per strategy (overall and critical-only)."""

    name: str
    alerts: int
    delivered: int
    on_time: int
    critical_alerts: int
    critical_delivered: int
    critical_on_time: int
    messages_per_alert: float
    latency: Summary

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.alerts if self.alerts else float("nan")

    @property
    def on_time_ratio(self) -> float:
        return self.on_time / self.alerts if self.alerts else float("nan")

    @property
    def critical_on_time_ratio(self) -> float:
        if not self.critical_alerts:
            return float("nan")
        return self.critical_on_time / self.critical_alerts


@dataclass
class ComparisonResult:
    strategies: list[StrategyMetrics]

    def by_name(self, name: str) -> StrategyMetrics:
        for metrics in self.strategies:
            if metrics.name == name:
                return metrics
        raise KeyError(name)


def run_comparison(
    n_alerts: int = 240,
    critical_fraction: float = 0.25,
    seed: int = 0,
    alert_period: float = 6 * MINUTE,
    away_fraction: float = 0.33,
) -> ComparisonResult:
    """Drive the same alert schedule through all three strategies."""
    world = SimbaWorld(WorldConfig(seed=seed, email_loss=0.02, sms_loss=0.03))
    rng = world.rngs.stream("comparison")

    users = {
        name: world.create_user(f"alice-{name}", present=True)
        for name in ("email-only", "redundant", "simba")
    }

    # The SIMBA arm gets the full pipeline: MAB with severity-split modes.
    simba_user = users["simba"]
    deployment = world.create_buddy(simba_user)
    deployment.register_user_endpoint(simba_user)
    deployment.subscribe("Critical", simba_user, "critical", keywords=["Critical"])
    deployment.subscribe("Routine", simba_user, "normal", keywords=["Routine"])
    deployment.config.classifier.accept_source("bench-source")
    deployment.launch()

    strategies = {
        "email-only": EmailOnlyDelivery(world.env, world.email),
        "redundant": BlanketRedundantDelivery(world.env, world.email, world.sms),
        "simba": SimbaStrategy(
            world.env,
            world.create_source_endpoint("bench-source"),
            deployment,
            source_name="bench-source",
        ),
    }

    # Identical presence schedule for all three users: away for a block of
    # each hour (meetings, commuting) — IM only works while present.
    def presence(env):
        away = away_fraction * HOUR
        while True:
            for user in users.values():
                user.set_present(True)
            yield env.timeout(HOUR - away)
            for user in users.values():
                user.set_present(False)
            yield env.timeout(away)

    world.env.process(presence(world.env))

    # One shared schedule of (time, severity); each strategy delivers a
    # same-severity alert of its own to its own user.
    schedule = [
        (
            30.0 + index * alert_period,
            AlertSeverity.CRITICAL
            if rng.random() < critical_fraction
            else AlertSeverity.ROUTINE,
        )
        for index in range(n_alerts)
    ]
    emitted: dict[str, list[Alert]] = {name: [] for name in strategies}

    def emitter(env):
        for at, severity in schedule:
            if at > env.now:
                yield env.timeout(at - env.now)
            for name, strategy in strategies.items():
                keyword = (
                    "Critical"
                    if severity is AlertSeverity.CRITICAL
                    else "Routine"
                )
                alert = Alert(
                    source="bench-source",
                    keyword=keyword,
                    subject=f"{keyword} event",
                    body="payload",
                    created_at=env.now,
                    severity=severity,
                )
                emitted[name].append(alert)
                strategy.deliver(alert, users[name])

    world.env.process(emitter(world.env))
    # Long tail: email can take hours; give everything time to land.
    world.run(until=schedule[-1][0] + 12 * HOUR)

    results = []
    for name, strategy in strategies.items():
        results.append(
            _score(name, emitted[name], users[name], strategy)
        )
    return ComparisonResult(strategies=results)


def _score(
    name: str, alerts: list[Alert], user: UserEndpoint, strategy
) -> StrategyMetrics:
    first_arrival: dict[str, float] = {}
    for receipt in user.receipts:
        if receipt.alert_id not in first_arrival:
            first_arrival[receipt.alert_id] = receipt.at
    latencies = []
    delivered = on_time = 0
    critical = critical_delivered = critical_on_time = 0
    for alert in alerts:
        is_critical = alert.severity is AlertSeverity.CRITICAL
        critical += int(is_critical)
        arrival = first_arrival.get(alert.alert_id)
        if arrival is None:
            continue
        delivered += 1
        critical_delivered += int(is_critical)
        latency = arrival - alert.created_at
        latencies.append(latency)
        if latency <= ON_TIME_DEADLINE:
            on_time += 1
            critical_on_time += int(is_critical)
    messages = user.messages_received()
    return StrategyMetrics(
        name=name,
        alerts=len(alerts),
        delivered=delivered,
        on_time=on_time,
        critical_alerts=critical,
        critical_delivered=critical_delivered,
        critical_on_time=critical_on_time,
        messages_per_alert=messages / len(alerts) if alerts else float("nan"),
        latency=summarize(latencies),
    )
