"""Experiments E6 and E9: the one-month fault-tolerance evaluation (§5).

E6 replays a faultload with the paper's category mix against the full HA
stack (pessimistic logging + MDC watchdog + self-stabilization + monkey
threads) and reports the same recovery-log categories the paper does.

E9 is the ablation: re-run the same month with one HA technique disabled at
a time and show that each is load-bearing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.stats import Summary, summarize
from repro.net.message import ChannelType
from repro.sim.clock import DAY, HOUR, MINUTE
from repro.sim.failures import FaultInjector, FaultKind, ScheduledFault
from repro.workloads.faultload import (
    TARGET_HOST,
    TARGET_IM_CLIENT,
    TARGET_IM_SERVICE,
    TARGET_MAB,
    TARGET_SCREEN,
    FaultloadSpec,
    generate_month_faultload,
)
from repro.world import SimbaWorld, WorldConfig


@dataclass(frozen=True)
class HAFeatures:
    """Which §4.2.1 techniques are active (E9 disables one at a time)."""

    pessimistic_logging: bool = True
    watchdog: bool = True
    self_stabilization: bool = True
    monkey_thread: bool = True

    def label(self) -> str:
        disabled = [
            name
            for name, enabled in (
                ("logging", self.pessimistic_logging),
                ("watchdog", self.watchdog),
                ("stabilization", self.self_stabilization),
                ("monkey", self.monkey_thread),
            )
            if not enabled
        ]
        return "full-stack" if not disabled else "no-" + "+".join(disabled)


@dataclass
class FaultMonthResult:
    """The recovery log aggregates the paper reports, plus delivery impact."""

    label: str
    injected: dict[str, int]
    im_outages: int
    im_outage_minutes: list[float]
    relogons: int
    client_restarts: int
    mdc_restarts: int
    reboots: int
    rejuvenations: int
    recovery_replays: int
    unrecovered: int
    alerts_emitted: int
    alerts_received: int
    duplicates_at_user: int
    user_latency: Summary = field(default_factory=lambda: summarize([]))

    @property
    def delivery_ratio(self) -> float:
        if self.alerts_emitted == 0:
            return float("nan")
        return self.alerts_received / self.alerts_emitted

    @property
    def im_path_ratio(self) -> float:
        """Fraction of received alerts that arrived by IM (timeliness proxy:
        everything else fell back to the slow store-and-forward channels)."""
        if self.alerts_received == 0:
            return float("nan")
        return self.user_latency.count / self.alerts_received


def run_fault_month(
    seed: int = 0,
    features: HAFeatures = HAFeatures(),
    spec: FaultloadSpec | None = None,
    alert_period: float = 10 * MINUTE,
    operator_response: float = 4 * HOUR,
) -> FaultMonthResult:
    """One month of alerts under the paper's fault mix."""
    if spec is None:
        spec = FaultloadSpec()
    world = SimbaWorld(WorldConfig(seed=seed))
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe("News", user, "normal", keywords=["News"])
    deployment.config.pessimistic_logging_enabled = features.pessimistic_logging
    deployment.config.self_stabilization_enabled = features.self_stabilization
    deployment.config.monkey_enabled = features.monkey_thread

    mdc = None
    if features.watchdog:
        mdc = world.start_mdc(deployment)
    else:
        deployment.launch()

    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")

    duration = spec.duration + 2 * DAY

    def emitter(env):
        index = 0
        while env.now < duration:
            source.emit("News", f"headline {index}", "body")
            index += 1
            yield env.timeout(alert_period)

    world.env.process(emitter(world.env))

    injector = _wire_targets(world, deployment, operator_response)
    faults = generate_month_faultload(world.rngs.stream("faultload"), spec)
    injector.load(faults)

    world.run(until=duration)

    injected: dict[str, int] = {}
    for record in injector.records:
        if record.accepted:
            key = record.fault.kind.value
            injected[key] = injected.get(key, 0) + 1
    outage_minutes = [
        f.duration / MINUTE
        for f in faults
        if f.kind is FaultKind.IM_SERVICE_OUTAGE
    ]
    unrecovered = spec.unknown_dialogs + (
        0 if world.config.host_has_ups else spec.power_outages
    )
    received = [r for r in user.receipts if not r.duplicate]
    return FaultMonthResult(
        label=features.label(),
        injected=injected,
        im_outages=spec.im_outages,
        im_outage_minutes=outage_minutes,
        relogons=deployment.endpoint.im_manager.stats.relogons,
        client_restarts=deployment.endpoint.im_manager.stats.restarts,
        mdc_restarts=len(mdc.restarts) if mdc is not None else 0,
        reboots=world.host.reboots,
        rejuvenations=len(deployment.journal.rejuvenations),
        recovery_replays=deployment.journal.count("recovery_replay"),
        unrecovered=unrecovered,
        alerts_emitted=len(source.emitted),
        alerts_received=len(received),
        duplicates_at_user=user.duplicates_discarded(),
        user_latency=summarize(
            [r.latency for r in received if r.channel is ChannelType.IM]
        ),
    )


def run_ha_ablation(
    seed: int = 0,
    spec: FaultloadSpec | None = None,
    alert_period: float = 10 * MINUTE,
) -> list[FaultMonthResult]:
    """E9: the full stack plus four single-feature ablations."""
    variants = [
        HAFeatures(),
        HAFeatures(pessimistic_logging=False),
        HAFeatures(watchdog=False),
        HAFeatures(self_stabilization=False),
        HAFeatures(monkey_thread=False),
    ]
    return [
        run_fault_month(
            seed=seed, features=features, spec=spec, alert_period=alert_period
        )
        for features in variants
    ]


@dataclass
class LoggingWindowResult:
    """Outcome of the targeted pessimistic-logging demonstration."""

    logging_enabled: bool
    alerts: int
    acked_by_mab: int
    delivered_to_user: int
    recovery_replays: int
    #: Alerts the source believes delivered (it got the IM ack!) that never
    #: reached the user — exactly what log-before-ack exists to prevent.
    acked_but_lost: int = 0


def run_logging_window(
    seed: int = 0, n_alerts: int = 30, logging_enabled: bool = True
) -> LoggingWindowResult:
    """Crash MAB inside the ack-to-processed window for every alert.

    Deterministic demonstration of §4.2.1 pessimistic logging: the source
    receives the acknowledgement (so it will never resend), then MAB dies
    before routing.  With logging, the restarted MAB replays the entry; with
    the ablation, the alert is gone although its sender saw an ack.
    """
    from repro.net.channel import LatencyModel

    fixed_im = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)
    world = SimbaWorld(
        WorldConfig(seed=seed, im_latency=fixed_im, email_loss=0.0, sms_loss=0.0)
    )
    user = world.create_user("alice", present=True)
    deployment = world.create_buddy(user)
    deployment.register_user_endpoint(user)
    deployment.subscribe("News", user, "normal", keywords=["News"])
    deployment.config.pessimistic_logging_enabled = logging_enabled
    mdc = world.start_mdc(deployment, check_interval=30.0)
    source = world.create_source("portal")
    source.add_target(deployment.source_facing_book())
    deployment.config.classifier.accept_source("portal")

    def scenario(env):
        for index in range(n_alerts):
            start = env.now
            source.emit("News", f"headline {index}", "body")
            # IM arrives at ~0.4, the (optional) log write ends ~0.9, the ack
            # lands back ~1.3; MAB finishes routing ~2.5.  Crash at 1.5:
            # after the ack, before the alert is marked processed.
            yield env.timeout(1.5)
            current = deployment.current
            if current is not None and current.alive:
                current.crash()
            # Give the MDC time to restart and the replay to complete.
            yield env.timeout(start + 120.0 - env.now)

    world.env.process(scenario(world.env))
    world.run(until=n_alerts * 120.0 + 600.0)

    acked_ids = {
        outcome.correlation
        for outcome in source.outcomes
        if outcome.delivered and outcome.delivered_via == 0
    }
    received_ids = user.unique_alerts_received()
    return LoggingWindowResult(
        logging_enabled=logging_enabled,
        alerts=n_alerts,
        acked_by_mab=len(acked_ids),
        delivered_to_user=len(received_ids),
        recovery_replays=deployment.journal.count("recovery_replay"),
        acked_but_lost=len(acked_ids - received_ids),
    )


def _wire_targets(
    world: SimbaWorld, deployment, operator_response: float
) -> FaultInjector:
    """Register handlers for the standard faultload target names."""
    injector = FaultInjector(world.env)

    def on_im_service(fault: ScheduledFault) -> bool:
        if fault.kind is FaultKind.IM_SERVICE_OUTAGE:
            world.im.outage(fault.duration)
            return True
        return False

    def on_im_client(fault: ScheduledFault) -> bool:
        if fault.kind is FaultKind.CLIENT_LOGOUT:
            return world.im.force_logout(deployment.im_address)
        if fault.kind is FaultKind.CLIENT_HANG:
            return deployment.endpoint.im_client.hang()
        if fault.kind is FaultKind.CLIENT_STALE_POINTER:
            client = deployment.endpoint.im_client
            if not client.running:
                return False
            client.terminate()
            client.start()
            return True
        return False

    def on_mab(fault: ScheduledFault) -> bool:
        current = deployment.current
        if current is None or not current.alive:
            return False
        if fault.kind is FaultKind.PROCESS_CRASH:
            return current.crash()
        if fault.kind is FaultKind.PROCESS_HANG:
            return current.hang()
        if fault.kind is FaultKind.MEMORY_LEAK:
            return current.leak_memory(fault.params.get("megabytes", 300.0))
        return False

    def on_host(fault: ScheduledFault) -> bool:
        if fault.kind is FaultKind.POWER_OUTAGE and world.host.up:
            return world.host.power_failure(fault.duration)
        return False

    def on_screen(fault: ScheduledFault) -> bool:
        if not world.host.up:
            return False
        caption = fault.params.get("caption", "Mystery dialog")
        button = fault.params.get("button", "OK")
        world.host.screen.pop_dialog(caption, (button,), owner=None)
        if fault.kind is FaultKind.UNKNOWN_DIALOG_POPUP:
            # The paper's fix: after a human noticed, the dialog-box handling
            # API was used to register the new caption-button pair.
            def operator(env):
                yield env.timeout(operator_response)
                deployment.endpoint.im_manager.register_dialog_rule(
                    caption, button
                )
                deployment.endpoint.email_manager.register_dialog_rule(
                    caption, button
                )
                # With the monkey ablated too, the operator clicks it away.
                blocking = [
                    d
                    for d in world.host.screen.open_dialogs()
                    if d.caption == caption
                ]
                for dialog in blocking:
                    world.host.screen.click(dialog, button)

            world.env.process(operator(world.env), name="operator-fix")
        return True

    injector.register(TARGET_IM_SERVICE, on_im_service)
    injector.register(TARGET_IM_CLIENT, on_im_client)
    injector.register(TARGET_MAB, on_mab)
    injector.register(TARGET_HOST, on_host)
    injector.register(TARGET_SCREEN, on_screen)
    return injector
