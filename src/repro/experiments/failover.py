"""Experiment E11: warm-standby failover vs the paper's MDC-only stack.

The §4.2.1 availability story is *same-host* recovery: the MDC relaunches a
crashed MyAlertBuddy, and a power loss therefore stalls delivery for the
whole outage plus the reboot.  The warm-standby pair
(:mod:`repro.core.replication`) exists to close exactly that window, and
this experiment quantifies it: one fixed schedule of primary-host power
losses, injected mid-delivery, replayed bit-identically against three
stacks —

- ``solo`` — a plain launched farm, no watchdog.  The crash is fatal;
  every alert after it is lost.  (The paper's motivation row.)
- ``mdc`` — tenants under their MDC watchdogs (the paper's §4.2.1 stack).
  Nothing is lost, but delivery stalls for outage + reboot.
- ``replicated`` — warm-standby pairs with log shipping, lease failover
  and epoch fencing.  The standby takes over within the lease timeout.

Per variant we measure offered/delivered/lost alerts, alerts routed more
than once (terminal ``routed`` trips — the duplicate metric fencing is
accountable for), failover promotions, and the per-alert delivery-latency
distribution.  The p95 latency is the headline: for an alert unlucky
enough to arrive during the outage it *is* the unavailability window.

:func:`run_failover_comparison` returns a :class:`FailoverResult`;
:func:`repro.metrics.failover_report.failover_report` renders the table
the CI ``failover-smoke`` job publishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.core.farm import FarmProfile
from repro.metrics.stats import Summary, summarize
from repro.sim.clock import MINUTE
from repro.sim.failures import FaultKind, ScheduledFault
from repro.testkit.harness import EMAIL_FAST, wire_chaos_targets
from repro.testkit.oracle import DEAD_LETTER_KINDS, DeliveryOracle
from repro.testkit.parallel import fanout
from repro.workloads.faultload import TARGET_HOST
from repro.world import SimbaWorld, WorldConfig

#: The three stacks compared, in presentation order.
VARIANTS = ("solo", "mdc", "replicated")


@dataclass
class FailoverVariant:
    """One stack's behaviour under the shared crash schedule."""

    name: str
    offered: int
    delivered: int
    #: Offered alerts that neither reached the user nor were explicitly
    #: dead-lettered — silent loss.
    lost: int
    #: Alerts with more than one terminal ``routed`` pipeline trip.
    duplicate_routes: int
    #: Failover promotions (replicated variant only).
    promotions: int
    #: Per-alert delivery latency (emit → first receipt), offered alerts.
    latency: Summary
    #: Oracle violations (informational for ``solo``, which loses alerts
    #: by construction).
    violations: list[str] = field(default_factory=list)


@dataclass
class FailoverResult:
    """All three variants under one crash schedule."""

    seed: int
    schedule: list[ScheduledFault]
    variants: list[FailoverVariant] = field(default_factory=list)

    def variant(self, name: str) -> FailoverVariant:
        for v in self.variants:
            if v.name == name:
                return v
        raise KeyError(name)

    @property
    def ok(self) -> bool:
        """The tentpole claim: the replicated pair loses nothing, routes
        nothing twice, satisfies the oracle (fencing invariants included),
        and its p95 per-alert unavailability beats MDC-only."""
        replicated = self.variant("replicated")
        mdc = self.variant("mdc")
        return (
            replicated.lost == 0
            and replicated.duplicate_routes == 0
            and not replicated.violations
            and replicated.latency.p95 < mdc.latency.p95
        )


def crash_schedule(
    seed: int,
    n_crashes: int = 2,
    start: float = 5 * MINUTE,
    window: float = 40 * MINUTE,
    outage: tuple[float, float] = (3 * MINUTE, 8 * MINUTE),
) -> list[ScheduledFault]:
    """Primary-host power losses spread over the workload window.

    Crash times land mid-window (never in the tail) so each outage hits
    alerts in flight, and outages are spaced so the host is back up (and
    the pair reconciled) before the next one.
    """
    rng = np.random.default_rng(seed)
    faults = []
    slot = window / n_crashes
    for index in range(n_crashes):
        at = start + index * slot + float(rng.uniform(0.1, 0.4)) * slot
        faults.append(
            ScheduledFault(
                at=at,
                kind=FaultKind.POWER_OUTAGE,
                target=TARGET_HOST,
                duration=float(rng.uniform(*outage)),
            )
        )
    return faults


def _run_variant(
    variant: str,
    seed: int,
    schedule: list[ScheduledFault],
    n_users: int,
    alert_period: float,
    window_end: float,
    settle: float,
    mdc_check_interval: float,
) -> FailoverVariant:
    oracle = DeliveryOracle()
    world = SimbaWorld(
        WorldConfig(
            seed=seed, email_latency=EMAIL_FAST, email_loss=0.0, sms_loss=0.0
        )
    )
    farm = world.create_farm(
        shards=4,
        profile=FarmProfile(categories=("News",), accept_sources=("portal",)),
    )
    tenants = farm.add_users(n_users)
    for tenant in tenants:
        tenant.deployment.config.pipeline_observer = oracle.observer_for(
            tenant.name
        )
    if variant == "replicated":
        farm.enable_replication()
    if variant == "solo":
        farm.launch_all()
    else:
        farm.start_watchdogs(check_interval=mdc_check_interval)

    source = world.create_source("portal")
    farm.register_with(source)

    offered: dict[str, set[str]] = {t.name: set() for t in tenants}
    emitted_at: dict[str, float] = {}

    def workload(env):
        index = 0
        while env.now < window_end:
            tenant = tenants[index % len(tenants)]
            alert, _ = source.emit_to(
                tenant.book, "News", f"e11-{index}-{tenant.name}", "body"
            )
            offered[tenant.name].add(alert.alert_id)
            emitted_at[alert.alert_id] = env.now
            index += 1
            yield env.timeout(alert_period)

    world.env.process(workload(world.env), name="e11-workload")
    injector = wire_chaos_targets(world, farm, operator_response=5 * MINUTE)
    injector.load(schedule)
    world.run(until=window_end + settle)

    report = oracle.check(
        farm, offered=offered, source_endpoints=[source.endpoint]
    )
    by_user = oracle.outcomes_by_user()
    total_offered = sum(len(ids) for ids in offered.values())
    delivered = 0
    lost = 0
    duplicate_routes = 0
    latencies: list[float] = []
    for tenant in tenants:
        received = tenant.user.unique_alerts_received()
        first_receipt = {}
        for receipt in tenant.user.receipts:
            if not receipt.duplicate:
                first_receipt.setdefault(receipt.alert_id, receipt.at)
        per_alert = by_user.get(tenant.name, {})
        # Emission order, not set order: alert ids come from a process-global
        # counter, so their hashes (and thus set iteration order) depend on
        # how many alerts this *process* made before the run.  Feeding the
        # latency summary in a counter-independent order keeps the result
        # bit-identical between in-process and forked-worker execution.
        for alert_id in sorted(
            offered[tenant.name], key=emitted_at.__getitem__
        ):
            trips = per_alert.get(alert_id, [])
            routed = sum(1 for t in trips if t.kind == "routed")
            if routed > 1:
                duplicate_routes += 1
            if alert_id in received:
                delivered += 1
                latencies.append(
                    first_receipt[alert_id] - emitted_at[alert_id]
                )
            elif not any(t.kind in DEAD_LETTER_KINDS for t in trips):
                lost += 1
    promotions = sum(
        len(t.pair.audit.promotions) - 1
        for t in tenants
        if t.pair is not None
    )
    return FailoverVariant(
        name=variant,
        offered=total_offered,
        delivered=delivered,
        lost=lost,
        duplicate_routes=duplicate_routes,
        promotions=promotions,
        latency=summarize(latencies),
        violations=[str(v) for v in report.violations],
    )


def _variant_worker(spec: dict) -> FailoverVariant:
    """Picklable wrapper so variant runs can cross a process boundary."""
    return _run_variant(**spec)


def run_failover_comparison(
    seed: int = 0,
    n_users: int = 2,
    n_crashes: int = 2,
    alert_period: float = 20.0,
    window: float = 40 * MINUTE,
    settle: float = 25 * MINUTE,
    mdc_check_interval: float = 60.0,
    schedule: Optional[list[ScheduledFault]] = None,
    variants: tuple[str, ...] = VARIANTS,
    jobs: Optional[int] = None,
) -> FailoverResult:
    """Replay one crash schedule against each stack in ``variants``.

    The default runs all three; acceptance sweeps that only need the
    mdc-vs-replicated verdict pass ``("mdc", "replicated")`` and skip the
    (informational, alert-losing) solo run.

    Each variant is an independent world replaying the same schedule, so
    ``jobs > 1`` runs them in parallel worker processes; results come back
    in ``variants`` order either way (None → ``REPRO_SWEEP_JOBS`` default).
    """
    if schedule is None:
        schedule = crash_schedule(seed, n_crashes=n_crashes, window=window)
    window_end = max(
        [5 * MINUTE + window] + [f.at + f.duration for f in schedule]
    )
    specs = [
        dict(
            variant=variant,
            seed=seed,
            schedule=schedule,
            n_users=n_users,
            alert_period=alert_period,
            window_end=window_end,
            settle=settle,
            mdc_check_interval=mdc_check_interval,
        )
        for variant in variants
    ]
    return FailoverResult(
        seed=seed,
        schedule=list(schedule),
        variants=fanout(_variant_worker, specs, jobs=jobs),
    )


def _seed_worker(spec: dict) -> FailoverResult:
    """Picklable per-seed worker for :func:`run_failover_sweep`."""
    return run_failover_comparison(**spec)


def run_failover_sweep(
    seeds: Iterable[int],
    jobs: Optional[int] = None,
    **kwargs,
) -> list[FailoverResult]:
    """The E11 acceptance sweep: one comparison per seed, merged in seed
    order.

    ``kwargs`` are forwarded to :func:`run_failover_comparison` unchanged
    for every seed.  Seeds are independent (each builds its own worlds),
    so ``jobs > 1`` fans them across a process pool; the merged list is
    identical to a sequential run's.  Nested parallelism is deliberately
    avoided: per-seed comparisons run their variants sequentially
    (``jobs=1``) so the pool is saturated by seeds, not oversubscribed.
    """
    specs = [dict(kwargs, seed=seed, jobs=1) for seed in seeds]
    return fanout(_seed_worker, specs, jobs=jobs)
