"""Experiment E12: storm hardening on vs off on identical storm traffic.

The paper's portal carried ~778 k alerts/day for ~225 k users (§1) —
traffic that arrives in correlated bursts (market open, breaking news),
not a polite Poisson trickle.  PR 7's admission layer
(:mod:`repro.core.admission`) exists for exactly that shape, and this
experiment quantifies what it buys: one deterministic alert storm
(:class:`~repro.testkit.generator.StormTrafficGenerator` — many sources
bursting at once, a fraction of arrivals re-submitted as duplicate
copies) plus one mid-burst IM outage, replayed bit-identically against
two farms —

- ``permissive`` — admission wired but every knob off
  (:meth:`~repro.core.admission.AdmissionConfig.permissive`).  The
  pre-hardening behaviour: every arrival is processed, duplicates are
  caught only by the in-journal ``routed_ids`` guard.
- ``hardened`` — :meth:`~repro.core.admission.AdmissionConfig.hardened`:
  token buckets at three scopes, dedup keys over a bounded LRU, retry
  budgets with backoff into the dead-letter queue, and storm-mode
  shedding of routine traffic.

Per variant we measure offered/delivered counts, duplicate copies that
reached the user's screen (the zero-duplicates-past-dedup claim),
deadline misses (first receipt later than ``deadline`` after emission),
the admission counters (shed / coalesced / rate-limited / dead-lettered /
dedup-suppressed), silently unaccounted alerts, and the delivery-latency
distribution.  Both runs are oracle-audited, including the PR 7
admission invariants (rate-limit fairness, every shed journalled, no
duplicate past dedup).

:func:`run_storm_comparison` returns a :class:`StormResult`;
:func:`repro.metrics.admission_report.admission_report` renders the
table the CI ``storm-smoke`` job publishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.admission import AdmissionConfig
from repro.core.alert import AlertSeverity
from repro.core.farm import FarmProfile
from repro.metrics.stats import Summary, summarize
from repro.sim.clock import MINUTE
from repro.sim.failures import FaultKind, ScheduledFault
from repro.testkit.generator import StormConfig, StormTrafficGenerator
from repro.testkit.harness import EMAIL_FAST, wire_chaos_targets
from repro.testkit.oracle import (
    ADMISSION_TERMINAL_KINDS,
    DEAD_LETTER_KINDS,
    DeliveryOracle,
)
from repro.testkit.parallel import fanout
from repro.workloads.faultload import TARGET_IM_SERVICE
from repro.world import SimbaWorld, WorldConfig

#: The two stacks compared, in presentation order.
VARIANTS = ("permissive", "hardened")

#: The E12 storm shape: a low base trickle punctuated by bursts intense
#: enough (vs the 3-tenant default farm) to trip the hardened config's
#: per-tenant storm detector and drain the recipient token buckets.
E12_STORM = StormConfig(
    n_sources=4,
    base_rate=0.02,
    burst_rate=4.0,
    n_bursts=2,
    burst_duration=90.0,
    duplicate_probability=0.2,
)


@dataclass
class StormVariant:
    """One admission config's behaviour under the shared storm."""

    name: str
    offered: int
    delivered: int
    #: Duplicate copies that reached the user's screen — the number the
    #: dedup layer must hold at zero.
    user_duplicates: int
    #: Delivered alerts whose first receipt arrived later than
    #: ``deadline`` seconds after emission.
    deadline_misses: int
    #: Admission counters (hardened variant; all zero when permissive).
    shed: int
    coalesced: int
    rate_limited: int
    dead_letters: int
    dedup_suppressed: int
    #: Offered alerts that neither reached the user nor carry an explicit
    #: terminal accounting (dead-letter or admission kind) — silent loss.
    unaccounted: int
    #: Per-alert delivery latency (emit → first receipt), offered alerts.
    latency: Summary
    violations: list[str] = field(default_factory=list)


@dataclass
class StormResult:
    """Both variants under one (storm, fault schedule) pair."""

    seed: int
    storm: StormConfig
    schedule: list[ScheduledFault]
    deadline: float
    variants: list[StormVariant] = field(default_factory=list)

    def variant(self, name: str) -> StormVariant:
        for v in self.variants:
            if v.name == name:
                return v
        raise KeyError(name)

    @property
    def ok(self) -> bool:
        """The tentpole claim: under the identical storm the hardened farm
        lets zero duplicates past dedup, accounts every non-delivered
        alert as shed / rate-limited / dead-lettered, and stays
        oracle-green (admission invariants included)."""
        hardened = self.variant("hardened")
        return (
            hardened.user_duplicates == 0
            and hardened.unaccounted == 0
            and not hardened.violations
        )


def storm_schedule(
    seed: int,
    storm: StormConfig,
    users: list[str],
    duration: float,
    start: float,
) -> list[ScheduledFault]:
    """One IM-service outage across the first burst window.

    The outage forces email fallbacks and retry chains right when the
    burst is draining the token buckets — the compound pressure the
    retry-budget and shedding paths exist for.  Burst windows are drawn
    from the same seeded generator the workload uses, so the outage
    always lands on the real burst.
    """
    windows = StormTrafficGenerator(
        seed, users, storm, duration=duration, start=start
    ).burst_windows()
    first = min(windows, key=lambda w: w.start)
    return [
        ScheduledFault(
            at=first.start,
            kind=FaultKind.IM_SERVICE_OUTAGE,
            target=TARGET_IM_SERVICE,
            duration=first.duration + MINUTE,
        )
    ]


def _run_variant(
    variant: str,
    seed: int,
    storm: StormConfig,
    schedule: list[ScheduledFault],
    n_users: int,
    duration: float,
    start: float,
    settle: float,
    deadline: float,
) -> StormVariant:
    admission = (
        AdmissionConfig.hardened(seed=seed)
        if variant == "hardened"
        else AdmissionConfig.permissive(seed=seed)
    )
    oracle = DeliveryOracle()
    world = SimbaWorld(
        WorldConfig(
            seed=seed, email_latency=EMAIL_FAST, email_loss=0.0, sms_loss=0.0
        )
    )
    storm_names = [f"storm{i}" for i in range(storm.n_sources)]
    farm = world.create_farm(
        shards=4,
        profile=FarmProfile(
            categories=("News",), accept_sources=tuple(storm_names)
        ),
    )
    tenants = farm.add_users(n_users)
    for tenant in tenants:
        cfg = tenant.deployment.config
        cfg.pipeline_observer = oracle.observer_for(tenant.name)
        cfg.admission = admission
    farm.start_watchdogs(check_interval=60.0)
    sources = [world.create_source(name) for name in storm_names]
    for source in sources:
        farm.register_with(source)

    events = StormTrafficGenerator(
        seed, [t.name for t in tenants], storm,
        duration=duration, start=start,
    ).generate()
    books = {t.name: t.book for t in tenants}
    offered: dict[str, set[str]] = {t.name: set() for t in tenants}
    emitted_at: dict[str, float] = {}

    def workload(env):
        last: dict[str, tuple] = {}
        index = 0
        for event in events:
            if event.at > env.now:
                yield env.timeout(event.at - env.now)
            src = sources[event.source]
            if event.duplicate and event.user in last:
                prev_src, prev_alert = last[event.user]
                env.process(
                    prev_src.deliver(prev_alert, books[event.user]),
                    name=f"{prev_src.name}-redeliver-{prev_alert.alert_id}",
                )
                continue
            alert, _ = src.emit_to(
                books[event.user],
                "News",
                f"e12-{index}-{event.user}",
                "body",
                severity=AlertSeverity(event.severity),
            )
            offered[event.user].add(alert.alert_id)
            emitted_at[alert.alert_id] = env.now
            last[event.user] = (src, alert)
            index += 1

    world.env.process(workload(world.env), name="e12-workload")
    injector = wire_chaos_targets(world, farm, operator_response=5 * MINUTE)
    injector.load(schedule)
    horizon = max(
        [start + duration] + [f.at + f.duration for f in schedule]
    ) + settle
    world.run(until=horizon)

    report = oracle.check(
        farm, offered=offered, source_endpoints=[s.endpoint for s in sources]
    )
    by_user = oracle.outcomes_by_user()
    accounted_kinds = DEAD_LETTER_KINDS | ADMISSION_TERMINAL_KINDS
    delivered = 0
    user_duplicates = 0
    deadline_misses = 0
    unaccounted = 0
    latencies: list[float] = []
    for tenant in tenants:
        received = tenant.user.unique_alerts_received()
        first_receipt: dict[str, float] = {}
        for receipt in tenant.user.receipts:
            if receipt.alert_id in offered[tenant.name]:
                if receipt.duplicate:
                    user_duplicates += 1
                else:
                    first_receipt.setdefault(receipt.alert_id, receipt.at)
        per_alert = by_user.get(tenant.name, {})
        # Emission order, not set order — alert-id hashes depend on the
        # process-global counter, and the latency summary must come out
        # bit-identical between sequential and forked-worker runs.
        for alert_id in sorted(
            offered[tenant.name], key=emitted_at.__getitem__
        ):
            trips = per_alert.get(alert_id, [])
            if alert_id in received:
                delivered += 1
                latency = first_receipt[alert_id] - emitted_at[alert_id]
                latencies.append(latency)
                if latency > deadline:
                    deadline_misses += 1
            elif not any(t.kind in accounted_kinds for t in trips):
                unaccounted += 1
    rollup = farm.admission_summary() or {}
    return StormVariant(
        name=variant,
        offered=sum(len(ids) for ids in offered.values()),
        delivered=delivered,
        user_duplicates=user_duplicates,
        deadline_misses=deadline_misses,
        shed=rollup.get("shed", 0),
        coalesced=rollup.get("coalesced", 0),
        rate_limited=rollup.get("rate_limited", 0),
        dead_letters=rollup.get("dead_letters", 0),
        dedup_suppressed=rollup.get("dedup_suppressed", 0),
        unaccounted=unaccounted,
        latency=summarize(latencies),
        violations=[str(v) for v in report.violations],
    )


def _variant_worker(spec: dict) -> StormVariant:
    """Picklable wrapper so variant runs can cross a process boundary."""
    return _run_variant(**spec)


def run_storm_comparison(
    seed: int = 0,
    n_users: int = 3,
    storm: Optional[StormConfig] = None,
    duration: float = 30 * MINUTE,
    start: float = 5 * MINUTE,
    settle: float = 30 * MINUTE,
    deadline: float = 5 * MINUTE,
    schedule: Optional[list[ScheduledFault]] = None,
    variants: tuple = VARIANTS,
    jobs: Optional[int] = None,
) -> StormResult:
    """Replay one storm against each admission config in ``variants``.

    Traffic is identical by construction: both variants regenerate the
    same event list from the same ``(seed, storm)`` pair.  Each variant
    is an independent world, so ``jobs > 1`` runs them in parallel
    worker processes; results come back in ``variants`` order either way
    (None → ``REPRO_SWEEP_JOBS`` default).
    """
    if storm is None:
        storm = E12_STORM
    users = [f"user{i}" for i in range(n_users)]
    if schedule is None:
        schedule = storm_schedule(seed, storm, users, duration, start)
    specs = [
        dict(
            variant=variant,
            seed=seed,
            storm=storm,
            schedule=schedule,
            n_users=n_users,
            duration=duration,
            start=start,
            settle=settle,
            deadline=deadline,
        )
        for variant in variants
    ]
    return StormResult(
        seed=seed,
        storm=storm,
        schedule=list(schedule),
        deadline=deadline,
        variants=fanout(_variant_worker, specs, jobs=jobs),
    )


def _seed_worker(spec: dict) -> StormResult:
    """Picklable per-seed worker for :func:`run_storm_sweep`."""
    return run_storm_comparison(**spec)


def run_storm_sweep(
    seeds: Iterable[int],
    jobs: Optional[int] = None,
    **kwargs,
) -> list[StormResult]:
    """The E12 acceptance sweep: one comparison per seed, merged in seed
    order — byte-identical between sequential and pooled execution.

    Per-seed comparisons run their variants sequentially (``jobs=1``) so
    the pool is saturated by seeds, not oversubscribed.
    """
    specs = [dict(kwargs, seed=seed, jobs=1) for seed in seeds]
    return fanout(_seed_worker, specs, jobs=jobs)
