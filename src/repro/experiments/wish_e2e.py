"""Experiment E5: the WISH location-alert chain (§5).

"From the time the laptop sends out the information wirelessly to the time
the subscriber gets notified by an IM alert, the average delivery time was
measured to be 5 seconds."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aladdin.sss import SoftStateStore
from repro.metrics.stats import Summary, summarize
from repro.net.message import ChannelType
from repro.sim.clock import MINUTE
from repro.wish import (
    FloorPlan,
    LocationTrigger,
    PathLossModel,
    Region,
    WISHAlertService,
    WISHClient,
    WISHServer,
)
from repro.world import SimbaWorld


@dataclass
class WishE2EResult:
    """Latency from wireless report to subscriber IM, plus accuracy info."""

    report_to_im: Summary
    moves: int
    alerts: int
    mean_confidence: float


def _office_plan() -> FloorPlan:
    plan = FloorPlan("msr")
    plan.add_region(Region("west-wing", 0, 0, 20, 20))
    plan.add_region(Region("east-wing", 20, 0, 40, 20))
    plan.add_region(Region("lab", 0, 20, 40, 35))
    plan.add_ap("ap-west", (10, 10))
    plan.add_ap("ap-east", (30, 10))
    plan.add_ap("ap-lab", (20, 28))
    return plan


def run_wish_location(
    n_moves: int = 60, seed: int = 0, move_period: float = 2 * MINUTE
) -> WishE2EResult:
    """Walk a tracked user between wings; measure report→subscriber-IM."""
    world = SimbaWorld(seed=seed)
    boss = world.create_user("boss", present=True)
    deployment = world.create_buddy(boss)
    deployment.register_user_endpoint(boss)
    deployment.subscribe(
        "Whereabouts",
        boss,
        "normal",
        keywords=[
            "Location move_region",
            "Location enter_building",
            "Location leave_building",
        ],
    )
    deployment.launch()
    deployment.config.classifier.accept_source("wish")

    plan = _office_plan()
    radio = PathLossModel(shadowing_sigma_db=2.0)
    store = SoftStateStore(world.env, "wish-sss")
    server = WISHServer(
        world.env, plan, radio, store, rng=world.rngs.stream("wish-server")
    )
    client = WISHClient(
        world.env,
        "victor",
        plan,
        radio,
        server,
        rng=world.rngs.stream("wish-client"),
        position=(5.0, 5.0),
    )
    service = WISHAlertService(
        world.env, "wish", world.create_source_endpoint("wish"), server
    )
    service.authorize("victor", "boss")
    service.request_tracking(
        "boss",
        "victor",
        {
            LocationTrigger.MOVE_REGION,
            LocationTrigger.ENTER_BUILDING,
            LocationTrigger.LEAVE_BUILDING,
        },
        deployment.source_facing_book(),
    )

    client.start()
    spots = [(5.0, 5.0), (30.0, 10.0), (15.0, 28.0)]
    client.walk(
        [
            (60.0 + index * move_period, spots[(index + 1) % len(spots)])
            for index in range(n_moves)
        ]
    )
    world.run(until=60.0 + n_moves * move_period + 5 * MINUTE)

    receipts = {r.alert_id: r for r in boss.receipts if not r.duplicate}
    samples = [
        receipts[alert_id].at - sent_at
        for alert_id, sent_at in service.provenance.items()
        if alert_id in receipts
        and receipts[alert_id].channel is ChannelType.IM
    ]
    confidences = [e.confidence for e in server.estimates if e.position]
    return WishE2EResult(
        report_to_im=summarize(samples),
        moves=n_moves,
        alerts=len(service.emitted),
        mean_confidence=(
            sum(confidences) / len(confidences) if confidences else 0.0
        ),
    )
