"""Experiment harnesses: one per result in the paper's evaluation (§5).

Each ``run_*`` function builds a world, executes the experiment, and returns
a result object whose fields correspond to the numbers the paper reports.
The benchmarks in ``benchmarks/`` are thin wrappers that run these, print
the paper-vs-measured table, and assert the qualitative *shape* holds.

| id | harness | paper claim |
|----|---------|-------------|
| E1 | :func:`~repro.experiments.latency.run_im_one_way` | one-way IM < 1 s |
| E2 | :func:`~repro.experiments.latency.run_ack_roundtrip` | logged ack ≈ 1.5 s |
| E3 | :func:`~repro.experiments.latency.run_proxy_routing` | proxy → user ≈ 2.5 s |
| E4 | :func:`~repro.experiments.aladdin_e2e.run_aladdin_disarm` | remote → IM ≈ 11 s |
| E5 | :func:`~repro.experiments.wish_e2e.run_wish_location` | laptop → IM ≈ 5 s |
| E6 | :func:`~repro.experiments.fault_tolerance.run_fault_month` | month of recoveries |
| E7 | :func:`~repro.experiments.portal_scale.run_portal_log` | 225 k users / 778 k alerts/day |
| E8 | :func:`~repro.experiments.delivery_comparison.run_comparison` | SIMBA vs baselines |
| E9 | :func:`~repro.experiments.fault_tolerance.run_ha_ablation` | each HA technique matters |
| E10 | :func:`~repro.experiments.chaos.run_chaos_experiment` | randomized chaos search |
| E11 | :func:`~repro.experiments.failover.run_failover_comparison` | warm-standby failover beats MDC-only |
| E12 | :func:`~repro.experiments.storm.run_storm_comparison` | admission hardening tames alert storms |
| E13 | :func:`~repro.experiments.sharded.run_sharded_comparison` | sharded farm-of-farms scales past one core |
| E14 | :func:`~repro.experiments.adversarial.run_adversarial_comparison` | stabilizing transport survives adversarial links |
"""

from repro.experiments.adversarial import (
    AdversarialResult,
    AdversarialVariant,
    adversarial_schedule,
    run_adversarial_comparison,
)

from repro.experiments.ablations import (
    AckTimeoutPoint,
    FarmThroughputPoint,
    LogLatencyPoint,
    run_ack_timeout_sweep,
    run_farm_throughput_sweep,
    run_log_latency_sweep,
)
from repro.experiments.aladdin_e2e import AladdinE2EResult, run_aladdin_disarm
from repro.experiments.chaos import (
    ChaosExperimentResult,
    run_chaos_experiment,
)
from repro.experiments.delivery_comparison import (
    ComparisonResult,
    StrategyMetrics,
    run_comparison,
)
from repro.experiments.failover import (
    FailoverResult,
    FailoverVariant,
    crash_schedule,
    run_failover_comparison,
)
from repro.experiments.fault_tolerance import (
    FaultMonthResult,
    HAFeatures,
    run_fault_month,
    run_ha_ablation,
)
from repro.experiments.latency import (
    run_ack_roundtrip,
    run_im_one_way,
    run_proxy_routing,
)
from repro.experiments.portal_scale import PortalScaleResult, run_portal_log
from repro.experiments.sharded import (
    ShardedComparisonResult,
    ShardedRunResult,
    run_sharded_comparison,
    run_sharded_throughput,
)
from repro.experiments.storm import (
    StormResult,
    StormVariant,
    run_storm_comparison,
    run_storm_sweep,
    storm_schedule,
)
from repro.experiments.wish_e2e import WishE2EResult, run_wish_location

__all__ = [
    "AckTimeoutPoint",
    "AdversarialResult",
    "AdversarialVariant",
    "AladdinE2EResult",
    "ChaosExperimentResult",
    "FarmThroughputPoint",
    "LogLatencyPoint",
    "run_ack_timeout_sweep",
    "run_farm_throughput_sweep",
    "run_log_latency_sweep",
    "ComparisonResult",
    "FailoverResult",
    "FailoverVariant",
    "FaultMonthResult",
    "HAFeatures",
    "PortalScaleResult",
    "ShardedComparisonResult",
    "ShardedRunResult",
    "StormResult",
    "StormVariant",
    "StrategyMetrics",
    "WishE2EResult",
    "adversarial_schedule",
    "run_ack_roundtrip",
    "run_adversarial_comparison",
    "run_aladdin_disarm",
    "run_chaos_experiment",
    "crash_schedule",
    "run_comparison",
    "run_failover_comparison",
    "run_fault_month",
    "run_ha_ablation",
    "run_im_one_way",
    "run_portal_log",
    "run_proxy_routing",
    "run_sharded_comparison",
    "run_sharded_throughput",
    "run_storm_comparison",
    "run_storm_sweep",
    "run_wish_location",
    "storm_schedule",
]
