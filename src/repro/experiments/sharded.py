"""E13: the sharded A4 — farm-of-farms throughput beyond one core.

A4 (:func:`~repro.experiments.ablations.run_farm_throughput_sweep`) showed
aggregate throughput growing near-linearly with tenants *inside one
kernel*; this experiment shows the next multiplier: partitioning the same
logical population over N :class:`~repro.core.shard.ShardedFarm` worker
processes and checking that (a) the work really spreads — each shard's
kernel only processes its own tenants — and (b) nothing about the results
depends on N (the shard-count-invariance oracle).

**Workload.** ``build_e13_workload`` is the per-shard builder the
:class:`~repro.core.shard.ShardWorker` runs at construction.  Out of a
population of ``users`` logical tenants, a deterministic ~``active_permille
/ 1000`` fraction are *senders*: each emits ``alerts_per_sender`` alerts at
times drawn from its own name-keyed RNG stream, and each alert fans out to
``fanout_width`` recipients chosen by stable hash over the whole
population.  Every hop — even to a recipient on the sender's own shard —
travels the cross-shard bridge, so delivery timing is a pure function of
the send time and identical in every layout.  Recipients materialize
lazily on first delivery, which is what lets the logical population reach
100k–1M while the kernels only carry the ~active slice.

**Single-core caveat.** Shard workers are OS processes; the measured
``speedup`` column is real parallelism and scales with available cores.
On a 1-core container every layout time-slices the same CPU, so the
honest local speedup is ~1× (the committed ``BENCH_A4_SHARD.json``
baseline records exactly that) — the invariance guarantees are what make
the multi-core numbers trustworthy wherever they are measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.farm import FarmProfile
from repro.core.shard import ShardedFarm, stable_hash64
from repro.metrics.stats import Summary, summarize
from repro.net.channel import LatencyModel
from repro.world import WorldConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.shard import ShardRuntime
    from repro.testkit.oracle import OracleReport

#: Dotted path handed to :class:`~repro.core.shard.ShardSpec` (must be
#: importable by name in worker processes).
E13_WORKLOAD = "repro.experiments.sharded:build_e13_workload"

#: Zero-variance channels: within one shard world the IM/email/SMS
#: substrates are shared by every local tenant, so any latency/loss
#: randomness would couple a tenant's timings to its neighbours' traffic —
#: exactly the interleaving dependence shard-count invariance forbids.
#: ``sigma=0`` latency draws consume no RNG and losses are off.
def e13_world_config(seed: int) -> WorldConfig:
    return WorldConfig(
        seed=seed,
        im_latency=LatencyModel(median=0.4, sigma=0.0, low=0.0, high=5.0),
        im_loss=0.0,
        email_latency=LatencyModel(median=45.0, sigma=0.0, low=0.0, high=600.0),
        email_loss=0.0,
        sms_latency=LatencyModel(median=10.0, sigma=0.0, low=0.0, high=120.0),
        sms_loss=0.0,
    )


#: Lean per-tenant configuration for six-figure populations: bounded
#: journals, no monkey/nightly background machinery, sanity checks pushed
#: past the horizon (each would add O(tenants × minutes) kernel events and
#: none of them are what E13 measures).
E13_PROFILE = FarmProfile(
    categories=("News",),
    mode_name="normal",
    accept_sources=("portal",),
    present=True,
    ack_enabled=True,
    sanity_interval=10**9,
    monkey_enabled=False,
    nightly_enabled=False,
    journal_max_events=64,
    launch_stagger=0.0,
)


def _is_sender(name: str, active_permille: int) -> bool:
    """Deterministic sender selection by name hash (layout-independent)."""
    return stable_hash64(f"e13-sender-{name}") % 1000 < active_permille


def _sender_process(env, runtime: "ShardRuntime", name: str, times,
                    fanout_width: int, population: int):
    previous = 0.0
    for j, at in enumerate(times):
        if at > previous:
            yield env.timeout(at - previous)
            previous = at
        for m in range(fanout_width):
            recipient = stable_hash64(f"e13-rcpt-{name}-{j}-{m}") % population
            runtime.send_envelope(
                runtime.user_name(recipient),
                "News",
                f"e13-{name}-{j}",
                "body",
                origin=name,
                seq=j * fanout_width + m,
                alert_id=f"e13-{name}-{j}-{m}",
            )


def build_e13_workload(
    runtime: "ShardRuntime",
    duration: float = 600.0,
    active_permille: int = 60,
    alerts_per_sender: int = 2,
    fanout_width: int = 2,
) -> None:
    """Install this shard's slice of the E13 traffic.

    Senders are pure traffic generators — they are never materialized as
    tenants (only *recipients* cost a MAB), and their emission times come
    from name-keyed streams, so the envelope set is a pure function of
    (seed, population), not of the shard layout.
    """
    env = runtime.world.env
    for name in runtime.local_names:
        if not _is_sender(name, active_permille):
            continue
        rng = runtime.world.rngs.stream(f"e13-traffic-{name}")
        times = sorted(
            float(t) for t in rng.uniform(0.0, duration, size=alerts_per_sender)
        )
        env.process(
            _sender_process(
                env, runtime, name, times, fanout_width, runtime.population
            ),
            name=f"e13-sender-{name}",
        )


@dataclass
class ShardedRunResult:
    """One measured shard layout of the E13 sweep."""

    shards: int
    population: int
    #: Tenants actually materialized (recipients only — see the workload).
    tenants: int
    receipts: int
    delivered: int
    envelopes: int
    undelivered_envelopes: int
    virtual_seconds: float
    wall_seconds: float
    alerts_per_wall_second: float
    latency: Summary
    counts: dict
    merged_fingerprint: str
    placement_summary: str
    per_shard_events: dict = field(default_factory=dict)


def run_sharded_throughput(
    shards: int,
    users: int = 100_000,
    seed: int = 0,
    duration: float = 600.0,
    epoch: float = 60.0,
    drain: float = 240.0,
    workload_kwargs: Optional[dict] = None,
    vnodes: int = 64,
    inline: bool = False,
) -> ShardedRunResult:
    """Run the E13 workload on one shard layout and measure it.

    ``drain`` extends the horizon past the traffic window so in-flight
    envelopes (due at most one ``epoch`` after the last send) and their
    delivery pipelines finish; the epoch-drain loop itself guarantees the
    same epoch sequence for every layout.  ``inline=True`` runs the shards
    in-process (tests, debugging) — same protocol, no parallelism.
    """
    kwargs = {"duration": duration}
    kwargs.update(workload_kwargs or {})
    until = duration + drain
    farm = ShardedFarm(
        shards=shards,
        seed=seed,
        population=users,
        workload=E13_WORKLOAD,
        workload_kwargs=kwargs,
        vnodes=vnodes,
        epoch=epoch,
        world_config=e13_world_config(seed),
        profile=E13_PROFILE,
        inline=inline,
    )
    with farm:
        started = time.perf_counter()
        farm.run(until=until)
        rollup = farm.merged_rollup()
        wall = time.perf_counter() - started
        fingerprint = farm.merged_fingerprint()
    envelopes = sum(load.envelopes_out for load in rollup.loads)
    return ShardedRunResult(
        shards=shards,
        population=users,
        tenants=rollup.tenants,
        receipts=rollup.receipts,
        delivered=rollup.delivered,
        envelopes=envelopes,
        undelivered_envelopes=rollup.undelivered_envelopes,
        virtual_seconds=until,
        wall_seconds=wall,
        alerts_per_wall_second=(
            rollup.delivered / wall if wall > 0 else float("nan")
        ),
        latency=summarize(rollup.latencies),
        counts=dict(rollup.counts),
        merged_fingerprint=fingerprint,
        placement_summary=rollup.placement.summary(),
        per_shard_events=dict(rollup.placement.per_shard_events),
    )


@dataclass
class ShardedComparisonResult:
    """The E13 sweep: one result per shard count, plus the oracle verdict."""

    results: list[ShardedRunResult]
    invariance: "OracleReport"

    @property
    def baseline(self) -> ShardedRunResult:
        return self.results[0]

    def speedup(self, result: ShardedRunResult) -> float:
        base = self.baseline.alerts_per_wall_second
        if base <= 0:
            return float("nan")
        return result.alerts_per_wall_second / base


def run_sharded_comparison(
    shard_counts: tuple[int, ...] = (1, 2, 4),
    users: int = 100_000,
    seed: int = 0,
    duration: float = 600.0,
    epoch: float = 60.0,
    drain: float = 240.0,
    workload_kwargs: Optional[dict] = None,
    inline: bool = False,
) -> ShardedComparisonResult:
    """Measure every layout in ``shard_counts`` and audit invariance.

    The first entry is the speedup baseline (conventionally 1).  The
    returned :class:`~repro.testkit.oracle.OracleReport` compares the
    *measured* runs — no extra simulation — so a fingerprint mismatch in a
    real sweep is caught, not just in the small test-tier worlds.
    """
    from repro.testkit.oracle import check_shard_count_invariance

    results = [
        run_sharded_throughput(
            shards=count,
            users=users,
            seed=seed,
            duration=duration,
            epoch=epoch,
            drain=drain,
            workload_kwargs=workload_kwargs,
            inline=inline,
        )
        for count in shard_counts
    ]
    return ShardedComparisonResult(
        results=results,
        invariance=check_shard_count_invariance(results=results),
    )
