"""E1 — one-way IM delivery, source → MyAlertBuddy (§5).

Paper: "The one-way IM delivery time from any of the alert sources to
MyAlertBuddy is typically less than one second."
"""

from repro.experiments import run_im_one_way
from repro.metrics.reports import format_table


def test_e1_im_one_way_latency(benchmark):
    summary = benchmark.pedantic(
        run_im_one_way, kwargs={"n_alerts": 300, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print(
        format_table(
            ["metric", "paper", "measured"],
            [
                ["one-way IM, typical (median)", "< 1 s", f"{summary.median:.2f} s"],
                ["one-way IM, p90", "< 1 s", f"{summary.p90:.2f} s"],
                ["one-way IM, mean", "—", f"{summary.mean:.2f} s"],
                ["samples", "—", summary.count],
            ],
            title="E1: one-way IM delivery (source -> MyAlertBuddy)",
        )
    )
    assert summary.count == 300
    # Shape: "typically less than one second".
    assert summary.median < 1.0
    assert summary.p90 < 1.0
    # And clearly an IM, not a store-and-forward channel.
    assert summary.mean < 2.0
