"""A6 — dead-timer cost of ack-heavy workloads (pytest-benchmark flavour).

The delivery engine's inner loop is ``any_of([ack, guard_timeout])`` where
the guard almost always loses.  Before timer cancellation, every resolved
race left one dead heap entry until its (far-future) deadline; at farm
scale that is one corpse per alert.  These benchmarks time the real
pattern against a hand-rolled variant whose guard can never be orphaned —
the gap is what cancellable timers buy.  The standalone runner
(``run_kernel_bench.py``) measures the same workloads for the JSON
artifacts and the CI regression gate.
"""

from repro.sim import Environment

N_RACES = 5_000
FANOUT = 50
GUARD = 600.0


def _responder(env, ack):
    yield env.timeout(0.1)
    ack.succeed(env.now)


def dead_timer_races(n_races=N_RACES, fanout=FANOUT):
    """The DeliveryRouter pattern: ack wins, guard timer gets cancelled."""
    env = Environment()

    def tenant(env, races):
        for _ in range(races):
            ack = env.event()
            env.process(_responder(env, ack))
            guard = env.timeout(GUARD)
            yield env.any_of([ack, guard])

    for _ in range(fanout):
        env.process(tenant(env, n_races // fanout))
    env.run()
    return env.now


def polluted_races(n_races=N_RACES, fanout=FANOUT):
    """Same races, but the guard keeps a callback so it always stays live.

    This reproduces the pre-cancellation kernel's heap pollution on any
    kernel revision, giving a hardware-independent within-run baseline.
    """
    env = Environment()

    def tenant(env, races):
        for _ in range(races):
            ack = env.event()
            env.process(_responder(env, ack))
            guard = env.timeout(GUARD)
            race = env.event()

            def settle(evt, race=race):
                if not race.triggered:
                    race.succeed(evt.value)

            ack.callbacks.append(settle)
            guard.callbacks.append(settle)
            yield race

    for _ in range(fanout):
        env.process(tenant(env, n_races // fanout))
    env.run()
    return env.now


def test_a6_ack_races_with_cancellation(benchmark):
    final = benchmark(dead_timer_races)
    # All acks land 0.1 s after their race starts; no dead guard may drag
    # the clock to its 600 s deadline.
    assert final < GUARD


def test_a6_ack_races_with_heap_pollution(benchmark):
    final = benchmark(polluted_races)
    # The hand-rolled guards stay live, so the run drains them at 600+ s.
    assert final >= GUARD


def test_a6_cancellation_keeps_heap_bounded():
    env = Environment()

    def tenant(env, races):
        for _ in range(races):
            ack = env.event()
            env.process(_responder(env, ack))
            guard = env.timeout(GUARD)
            yield env.any_of([ack, guard])

    for _ in range(FANOUT):
        env.process(tenant(env, N_RACES // FANOUT))
    env.run()
    # One dead guard per race would be N_RACES entries; cancellation plus
    # compaction keeps the residue near zero.
    assert env.queue_depth == 0
    assert env.dead_entries <= FANOUT
