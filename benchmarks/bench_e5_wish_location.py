"""E5 — WISH location alert: laptop report to subscriber IM (§5).

Paper: "From the time the laptop sends out the information wirelessly to the
time the subscriber gets notified by an IM alert, the average delivery time
was measured to be 5 seconds."
"""

from repro.experiments import run_wish_location
from repro.metrics.reports import format_table


def test_e5_wish_location_alert(benchmark):
    result = benchmark.pedantic(
        run_wish_location, kwargs={"n_moves": 60, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print(
        format_table(
            ["metric", "paper", "measured"],
            [
                ["laptop report -> subscriber IM, mean", "~5 s",
                 f"{result.report_to_im.mean:.2f} s"],
                ["median", "—", f"{result.report_to_im.median:.2f} s"],
                ["location alerts fired", "—", result.alerts],
                ["mean location confidence", "a few meters / % attached",
                 f"{result.mean_confidence:.1f} %"],
            ],
            title="E5: WISH location-change alert",
        )
    )
    # Shape: ~5 s — slower than plain proxy routing (extra WISH hops),
    # much faster than the Aladdin powerline chain.
    assert 3.0 < result.report_to_im.mean < 7.0
    assert result.alerts >= result.moves - 2
    assert result.mean_confidence > 50.0
