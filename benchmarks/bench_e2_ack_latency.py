"""E2 — acknowledgement round trip with pessimistic logging (§5).

Paper: "With pessimistic logging, the alert source receives an
acknowledgement in about 1.5 seconds."
"""

from repro.experiments import run_ack_roundtrip, run_im_one_way
from repro.metrics.reports import format_table


def test_e2_ack_roundtrip_latency(benchmark):
    summary = benchmark.pedantic(
        run_ack_roundtrip, kwargs={"n_alerts": 300, "seed": 0},
        rounds=1, iterations=1,
    )
    one_way = run_im_one_way(n_alerts=100, seed=1)
    print()
    print(
        format_table(
            ["metric", "paper", "measured"],
            [
                ["ack round trip, mean", "~1.5 s", f"{summary.mean:.2f} s"],
                ["ack round trip, median", "~1.5 s", f"{summary.median:.2f} s"],
                ["one-way (for comparison)", "< 1 s", f"{one_way.mean:.2f} s"],
                ["samples", "—", summary.count],
            ],
            title="E2: logged-ack round trip (source <- MyAlertBuddy)",
        )
    )
    # Shape: about 1.5 s — between 1 and 2.5.
    assert 1.0 < summary.mean < 2.5
    # And strictly more than one-way plus the 0.5 s log write.
    assert summary.mean > one_way.mean + 0.5
