"""E3 — proxy change detection routed through MAB to the user (§5).

Paper: "An alert proxy was set up to monitor the Florida recount numbers and
the availability of the PlayStation2 game consoles ...  When the proxy
detected a change, it sent out an alert, which on average took 2.5 seconds
to route through MyAlertBuddy to reach the user."
"""

from repro.experiments import run_proxy_routing
from repro.metrics.reports import format_table


def test_e3_proxy_to_user_latency(benchmark):
    summary = benchmark.pedantic(
        run_proxy_routing, kwargs={"n_changes": 120, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print(
        format_table(
            ["metric", "paper", "measured"],
            [
                ["proxy -> MAB -> user, mean", "~2.5 s", f"{summary.mean:.2f} s"],
                ["median", "—", f"{summary.median:.2f} s"],
                ["p95", "—", f"{summary.p95:.2f} s"],
                ["changes detected", "—", summary.count],
            ],
            title="E3: proxy-detected change to user IM popup",
        )
    )
    assert summary.count == 120
    # Shape: ~2.5 s average — single-digit seconds, more than a bare IM hop.
    assert 1.5 < summary.mean < 4.0
