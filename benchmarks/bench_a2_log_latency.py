"""A2 — ablation: pessimistic-log write latency on the ack path.

Decomposes the paper's E2 number: the measured ack round trip should be
(one-way IM) + (synchronous log write) + (one-way IM), i.e. grow linearly
with the write latency with slope 1.
"""

import pytest

from repro.experiments.ablations import run_log_latency_sweep
from repro.metrics.reports import format_table


def test_a2_log_write_latency_decomposition(benchmark):
    points = benchmark.pedantic(
        run_log_latency_sweep, kwargs={"n_alerts": 100, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print(
        format_table(
            ["log write latency", "ack RTT mean", "ack RTT median"],
            [
                [f"{p.write_latency:.2f} s", f"{p.ack_rtt.mean:.2f} s",
                 f"{p.ack_rtt.median:.2f} s"]
                for p in points
            ],
            title="A2: ack round trip vs pessimistic-log write latency",
        )
    )
    base = points[0].ack_rtt.mean  # write latency 0: pure 2x one-way IM
    assert 0.6 < base < 1.4
    for point in points[1:]:
        # Slope 1: each extra second of write latency costs exactly one
        # second of ack RTT (same seed → same channel draws).
        assert point.ack_rtt.mean == pytest.approx(
            base + point.write_latency, abs=0.05
        )
    # The paper's configuration (0.5 s write) lands on its ~1.5 s figure.
    half = next(p for p in points if p.write_latency == 0.5)
    assert 1.1 < half.ack_rtt.mean < 1.8
