"""E7 — the commercial-portal usage-log aggregates (§1).

Paper: "We analyzed a recent one-week usage log from a commercial portal
site, and it showed that on average around 225 thousands of people received
around 778 thousands of alerts every day from that site."
"""

from repro.experiments import run_portal_log
from repro.metrics.reports import format_table


def test_e7_portal_usage_log(benchmark):
    result = benchmark.pedantic(
        run_portal_log,
        kwargs={"seed": 0, "full_scale_days": 3},
        rounds=1, iterations=1,
    )
    print()
    print(
        format_table(
            ["metric", "paper", "measured"],
            [
                ["alerts per day (full scale)", "~778,000",
                 f"{result.mean_alerts_per_day:,.0f}"],
                ["distinct recipients per day", "~225,000",
                 f"{result.mean_users_per_day:,.0f}"],
                ["alerts per recipient per day", "~3.46",
                 f"{result.alerts_per_user:.2f}"],
                ["replay farm (one kernel)", "—",
                 f"{result.replay_users} MAB tenants"],
                ["replay day", "—",
                 f"{result.replay_alerts} alerts"],
                ["replay delivery ratio", "—",
                 f"{result.replay_delivery_ratio:.3f}"],
                ["replay median latency", "—",
                 f"{result.replay_latency.median:.2f} s"],
                ["replay aggregate throughput", "—",
                 f"{result.replay_throughput:.4f} alerts/s"],
            ],
            title="E7: portal usage-log scale reproduction",
        )
    )
    assert 700_000 < result.mean_alerts_per_day < 850_000
    assert 200_000 < result.mean_users_per_day < 250_000
    assert result.replay_users >= 500
    assert result.replay_delivery_ratio > 0.95
    assert result.replay_latency.median < 10.0
