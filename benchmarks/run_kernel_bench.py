"""Standalone kernel benchmark runner: A5 throughput + A6 dead timers.

Unlike the pytest-benchmark modules (``bench_a5_kernel.py``,
``bench_a6_dead_timers.py``), this runner needs nothing beyond the
standard library, emits machine-readable JSON artifacts, and doubles as
the CI regression gate::

    python benchmarks/run_kernel_bench.py --out-dir benchmarks/baselines
    python benchmarks/run_kernel_bench.py --check benchmarks/baselines

Every workload builds on the *public* kernel API only, so the same file
runs unchanged against any kernel revision — that is how the before/after
tables in EXPERIMENTS.md (§A5/§A6) were produced.

CI regression checking compares events-per-second against the committed
baseline after normalizing by a pure-Python calibration loop measured in
the same run; dividing out the calibration ratio cancels most of the
hardware difference between the baseline machine and the CI runner, so
the gate trips on kernel regressions, not on runner lottery.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.sim import Environment, Store

#: Per-workload event counts, sized so each sample runs long enough
#: (hundreds of milliseconds) to dominate timer noise.
N_A5 = 100_000
N_A6_RACES = 20_000
A6_FANOUT = 100
REPEATS = 3


# ----------------------------------------------------------------------
# A5 workloads — raw kernel throughput
# ----------------------------------------------------------------------

def timeout_churn(n: int = N_A5) -> int:
    """Schedule/fire ``n`` timeouts through one process."""
    env = Environment()

    def ticker(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    return n


def zero_delay_churn(n: int = N_A5) -> int:
    """``n`` zero-delay hops — the succeed()/immediate-schedule hot path."""
    env = Environment()

    def hopper(env):
        for _ in range(n):
            yield env.timeout(0)

    env.process(hopper(env))
    env.run()
    return n


def store_churn(n: int = N_A5) -> int:
    """``n`` put/get handoffs between two processes."""
    env = Environment()
    store = Store(env)

    def producer(env):
        for index in range(n // 2):
            yield store.put(index)

    def consumer(env):
        for _ in range(n // 2):
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return n


def process_spawn_churn(n: int = N_A5 // 2) -> int:
    """Spawn many short-lived processes (delivery processes look like this)."""
    env = Environment()

    def short(env):
        yield env.timeout(1.0)

    def spawner(env):
        for _ in range(n):
            env.process(short(env))
            yield env.timeout(0.1)

    env.process(spawner(env))
    env.run()
    return n


# ----------------------------------------------------------------------
# A6 workloads — the ack-heavy dead-timer pattern
# ----------------------------------------------------------------------

def _responder(env, ack):
    yield env.timeout(0.1)
    ack.succeed(env.now)


def dead_timer_races(n_races: int = N_A6_RACES, fanout: int = A6_FANOUT) -> int:
    """The DeliveryRouter pattern: ``any_of([ack, timeout])``, ack wins.

    ``fanout`` tenants each run ``n_races / fanout`` back-to-back ack
    races with a 600 s guard timeout that always loses.  A kernel without
    timer cancellation accumulates one dead heap entry per race and then
    drains all of them at the end; a cancelling kernel keeps the heap at
    O(fanout).
    """
    env = Environment()

    def tenant(env, races):
        for _ in range(races):
            ack = env.event()
            env.process(_responder(env, ack))
            guard = env.timeout(600.0)
            yield env.any_of([ack, guard])

    for _ in range(fanout):
        env.process(tenant(env, n_races // fanout))
    env.run()
    return n_races


def polluted_races(n_races: int = N_A6_RACES, fanout: int = A6_FANOUT) -> int:
    """The same race hand-rolled so the losing timeout always stays live.

    This reproduces the pre-cancellation kernel's behaviour *on any
    kernel* (the guard keeps a callback, so it is never orphaned): the
    per-run ratio ``dead_timer_races / polluted_races`` is therefore a
    hardware-independent measure of what timer cancellation buys.
    """
    env = Environment()

    def tenant(env, races):
        for _ in range(races):
            ack = env.event()
            env.process(_responder(env, ack))
            guard = env.timeout(600.0)
            race = env.event()

            def settle(evt, race=race):
                if not race.triggered:
                    race.succeed(evt.value)

            ack.callbacks.append(settle)
            guard.callbacks.append(settle)
            yield race

    for _ in range(fanout):
        env.process(tenant(env, n_races // fanout))
    env.run()
    return n_races


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def calibration(n: int = 2_000_000) -> int:
    """Fixed pure-Python loop used to normalize across machines."""
    total = 0
    for index in range(n):
        total += index & 7
    assert total > 0
    return n


def _time_best(fn, *args) -> tuple[float, int]:
    """Best-of-``REPEATS`` wall time; returns (seconds, work units)."""
    best = float("inf")
    units = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        units = fn(*args)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, units


A5_WORKLOADS = {
    "timeout_churn_eps": timeout_churn,
    "zero_delay_eps": zero_delay_churn,
    "store_churn_eps": store_churn,
    "process_spawn_eps": process_spawn_churn,
}

A6_WORKLOADS = {
    "dead_timer_races_per_s": dead_timer_races,
    "polluted_races_per_s": polluted_races,
}


def run_suite(scale: float = 1.0) -> dict[str, dict]:
    """Run every workload; returns {"BENCH_A5": {...}, "BENCH_A6": {...}}."""
    cal_elapsed, cal_units = _time_best(calibration)
    cal_eps = cal_units / cal_elapsed

    def measure(workloads):
        metrics = {}
        for name, fn in workloads.items():
            elapsed, units = _time_best(
                fn, max(1000, int(fn.__defaults__[0] * scale))
            )
            metrics[name] = units / elapsed
        return metrics

    a5 = measure(A5_WORKLOADS)
    a6 = measure(A6_WORKLOADS)
    a6["cancellation_speedup"] = (
        a6["dead_timer_races_per_s"] / a6["polluted_races_per_s"]
    )
    return {
        "BENCH_A5": {"schema": 1, "calibration_eps": cal_eps, "metrics": a5},
        "BENCH_A6": {"schema": 1, "calibration_eps": cal_eps, "metrics": a6},
    }


def check_against(
    results: dict[str, dict], baseline_dir: Path, tolerance: float
) -> list[str]:
    """Compare normalized throughput to committed baselines.

    A metric regresses when ``current / hardware_ratio`` falls more than
    ``tolerance`` below the baseline, where ``hardware_ratio`` is the
    current-vs-baseline calibration quotient.  Ratio metrics (already
    hardware-independent) are compared directly.
    """
    failures = []
    for artifact, current in results.items():
        path = baseline_dir / f"{artifact}.json"
        if not path.exists():
            failures.append(f"missing baseline {path}")
            continue
        baseline = json.loads(path.read_text())
        hardware_ratio = current["calibration_eps"] / baseline["calibration_eps"]
        for name, base_value in baseline["metrics"].items():
            value = current["metrics"].get(name)
            if value is None:
                failures.append(f"{artifact}: metric {name} disappeared")
                continue
            normalized = (
                value if name.endswith("_speedup") else value / hardware_ratio
            )
            if normalized < base_value * (1.0 - tolerance):
                failures.append(
                    f"{artifact}: {name} regressed "
                    f"{normalized:,.0f} < {base_value:,.0f} "
                    f"(tolerance {tolerance:.0%}, "
                    f"hardware ratio {hardware_ratio:.2f})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir", type=Path, default=None,
        help="write BENCH_A5.json / BENCH_A6.json here",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE_DIR",
        help="fail (exit 1) if throughput regressed vs committed baselines",
    )
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="multiply workload sizes (use <1 for smoke runs)",
    )
    args = parser.parse_args(argv)

    results = run_suite(scale=args.scale)
    for artifact, payload in results.items():
        print(f"{artifact}:")
        for name, value in payload["metrics"].items():
            unit = "x" if name.endswith("_speedup") else "/s"
            print(f"  {name:28s} {value:>12,.1f} {unit}")
    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for artifact, payload in results.items():
            path = args.out_dir / f"{artifact}.json"
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            print(f"wrote {path}")
    if args.check is not None:
        failures = check_against(results, args.check, args.tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"benchmark check passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
