"""A3 — WISH location accuracy vs RF shadowing (§2.4's "few meters" claim).

"The WISH system is able to determine the user's real-time location to
within a few meters.  A confidence percentage is associated with each
estimate."  This bench sweeps the shadowing noise of the radio environment
and reports median location error and mean confidence — the RADAR-style
accuracy figure, plus a check that confidence actually tracks accuracy.
"""

import math

from repro.aladdin.sss import SoftStateStore
from repro.metrics.reports import format_table
from repro.metrics.stats import summarize
from repro.sim import Environment, RngRegistry
from repro.wish import FloorPlan, PathLossModel, Region, WISHServer
from repro.wish.server import ClientReport


def office_plan():
    plan = FloorPlan("bench-building")
    plan.add_region(Region("west", 0, 0, 25, 25))
    plan.add_region(Region("east", 25, 0, 50, 25))
    plan.add_ap("ap1", (12, 12))
    plan.add_ap("ap2", (38, 12))
    plan.add_ap("ap3", (25, 5))
    plan.add_ap("ap4", (25, 20))
    return plan


def run_accuracy_sweep(
    sigmas=(0.0, 2.0, 4.0, 8.0), samples_per_sigma=120, seed=0
):
    plan = office_plan()
    rngs = RngRegistry(seed=seed)
    position_rng = rngs.stream("positions")
    results = []
    for sigma in sigmas:
        env = Environment()
        radio = PathLossModel(shadowing_sigma_db=sigma)
        store = SoftStateStore(env, "sss")
        server = WISHServer(
            env, plan, radio, store, rng=rngs.stream(f"server-{sigma}")
        )
        measure_rng = rngs.stream(f"measure-{sigma}")
        errors, confidences = [], []
        for _ in range(samples_per_sigma):
            x = float(position_rng.uniform(2, 48))
            y = float(position_rng.uniform(2, 23))
            strengths = {}
            for ap in plan.access_points:
                power = radio.measure(ap.distance_to((x, y)), measure_rng)
                if power is not None:
                    strengths[ap.ap_id] = power
            estimate = server.locate(
                ClientReport("u", "available", None, strengths, 0.0)
            )
            if estimate.position is None:
                continue
            errors.append(math.dist(estimate.position, (x, y)))
            confidences.append(estimate.confidence)
        results.append((sigma, summarize(errors), summarize(confidences)))
    return results


def test_a3_wish_accuracy_vs_shadowing(benchmark):
    results = benchmark.pedantic(run_accuracy_sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["shadowing sigma", "median error", "p90 error",
             "mean confidence"],
            [
                [f"{sigma:.1f} dB", f"{err.median:.1f} m",
                 f"{err.p90:.1f} m", f"{conf.mean:.0f} %"]
                for sigma, err, conf in results
            ],
            title="A3: WISH location error vs RF shadowing noise",
        )
    )
    by_sigma = {sigma: (err, conf) for sigma, err, conf in results}
    # The paper's operating point ("a few meters") at realistic 2 dB noise.
    assert by_sigma[2.0][0].median < 5.0
    # Noise degrades accuracy monotonically across the sweep extremes...
    assert by_sigma[8.0][0].median > by_sigma[0.0][0].median
    # ...and the reported confidence tracks the degradation (it is honest).
    assert by_sigma[8.0][1].mean < by_sigma[0.0][1].mean
