"""Standalone sharded-farm benchmark runner: the A4-sharded gate.

Runs the E13 workload (see :mod:`repro.experiments.sharded`) on a fixed
population at each layout in ``--shards``, measures wall-clock aggregate
delivery throughput, verifies shard-count invariance (bit-identical merged
journal fingerprints — a correctness gate, not a tolerance check), and
emits/checks a ``BENCH_A4_SHARD.json`` artifact::

    python benchmarks/run_shard_bench.py --out-dir benchmarks/baselines
    python benchmarks/run_shard_bench.py --check benchmarks/baselines

Regression checking reuses :func:`run_kernel_bench.check_against`:
absolute ``alerts_per_s`` metrics are normalized by the same pure-Python
calibration loop; the ``_speedup`` metric is hardware-independent and
compared directly, as a one-sided lower bound.

The committed baseline was produced on a **1-core container**, where every
shard time-slices the same CPU and the honest parallel speedup is ~1x.
The architecture's speedup materializes with the cores: on an N-core
runner shards=4 runs its four kernels concurrently and the measured
speedup clears the baseline bound with room.  What makes the multi-core
number trustworthy is the invariance gate next to it — more shards change
wall-clock only, never results.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from run_kernel_bench import _time_best, calibration, check_against  # noqa: E402

#: Gate configuration — fixed so the committed baseline and every CI run
#: measure the same workload (alerts/s is not scale-invariant enough to
#: compare across population sizes).
USERS = 20_000
SHARD_COUNTS = (1, 4)
SEED = 0
DURATION = 600.0
EPOCH = 60.0
DRAIN = 240.0

ARTIFACT = "BENCH_A4_SHARD"


def run_suite(
    users: int = USERS,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    seed: int = SEED,
) -> tuple[dict[str, dict], list[str]]:
    """Measure every layout; returns ({artifact: payload}, fingerprints)."""
    from repro.experiments.sharded import run_sharded_throughput

    cal_elapsed, cal_units = _time_best(calibration)
    results = [
        run_sharded_throughput(
            shards=count, users=users, seed=seed,
            duration=DURATION, epoch=EPOCH, drain=DRAIN,
        )
        for count in shard_counts
    ]
    metrics: dict[str, float] = {}
    for result in results:
        metrics[f"shards{result.shards}_alerts_per_s"] = (
            result.alerts_per_wall_second
        )
    base, top = results[0], results[-1]
    metrics["shard_parallel_speedup"] = (
        top.alerts_per_wall_second / base.alerts_per_wall_second
    )
    payload = {
        "schema": 1,
        "calibration_eps": cal_units / cal_elapsed,
        "config": {
            "users": users,
            "shard_counts": list(shard_counts),
            "seed": seed,
            "duration": DURATION,
            "epoch": EPOCH,
            "drain": DRAIN,
            "delivered": base.delivered,
        },
        "metrics": metrics,
    }
    return {ARTIFACT: payload}, [r.merged_fingerprint for r in results]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir", type=Path, default=None,
        help=f"write {ARTIFACT}.json here",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE_DIR",
        help="fail (exit 1) if throughput regressed vs the committed baseline",
    )
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument(
        "--users", type=int, default=USERS,
        help="logical population (only the default is baseline-comparable)",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(SHARD_COUNTS),
        help="shard layouts to measure (first is the speedup baseline)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    results, fingerprints = run_suite(
        users=args.users, shard_counts=tuple(args.shards)
    )
    payload = results[ARTIFACT]
    print(f"{ARTIFACT} ({payload['config']['users']:,} users, "
          f"{time.perf_counter() - started:.0f} s):")
    for name, value in payload["metrics"].items():
        unit = "x" if name.endswith("_speedup") else "/s"
        print(f"  {name:28s} {value:>12,.1f} {unit}")

    # Invariance is a correctness gate: identical or the run is wrong.
    if len(set(fingerprints)) != 1:
        print(
            "INVARIANCE FAILURE: merged journal fingerprints differ across "
            f"shard layouts: {fingerprints}",
            file=sys.stderr,
        )
        return 1
    print(f"  merged fingerprint           {fingerprints[0][:16]} "
          f"(identical across {len(fingerprints)} layouts)")

    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        path = args.out_dir / f"{ARTIFACT}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    if args.check is not None:
        failures = check_against(results, args.check, args.tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"benchmark check passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
