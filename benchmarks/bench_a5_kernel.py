"""A5 — simulation-kernel throughput (events/second of host CPU).

Not a paper experiment: a library health metric.  Everything else in this
repository rides on the kernel, so a regression here slows every bench.
Unlike E1–E9 (single-shot pedantic runs), these use pytest-benchmark's
normal repeated timing.
"""

from repro.sim import Environment, Store


N_EVENTS = 20_000


def timeout_churn():
    """Schedule/fire N timeouts through one process."""
    env = Environment()

    def ticker(env):
        for _ in range(N_EVENTS):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    return env.now


def store_churn():
    """N put/get handoffs between two processes."""
    env = Environment()
    store = Store(env)

    def producer(env):
        for index in range(N_EVENTS // 2):
            yield store.put(index)

    def consumer(env):
        for _ in range(N_EVENTS // 2):
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return len(store)


def process_spawn_churn():
    """Spawn many short-lived processes (delivery processes look like this)."""
    env = Environment()

    def short(env):
        yield env.timeout(1.0)

    def spawner(env):
        for _ in range(N_EVENTS // 4):
            env.process(short(env))
            yield env.timeout(0.1)

    env.process(spawner(env))
    env.run()
    return env.now


def test_a5_kernel_timeout_throughput(benchmark):
    result = benchmark(timeout_churn)
    assert result == float(N_EVENTS)


def test_a5_kernel_store_throughput(benchmark):
    result = benchmark(store_churn)
    assert result == 0


def test_a5_kernel_process_spawn_throughput(benchmark):
    benchmark(process_spawn_churn)
