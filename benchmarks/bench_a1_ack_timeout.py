"""A1 — ablation: the delivery-mode acknowledgement timeout (DESIGN.md §5).

The ack timeout is SIMBA's only tunable on the critical path: too small and
healthy deliveries fall back prematurely (wasted messages + duplicates at
MAB), too large and genuinely-stuck deliveries stall for the full wait.
"""

from repro.experiments.ablations import run_ack_timeout_sweep
from repro.metrics.reports import format_table


def test_a1_ack_timeout_tradeoff(benchmark):
    points = benchmark.pedantic(
        run_ack_timeout_sweep, kwargs={"n_alerts": 120, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print(
        format_table(
            ["ack timeout", "delivered", "premature fallbacks",
             "duplicates at MAB", "mean source latency"],
            [
                [f"{p.ack_timeout:.0f} s", f"{p.delivered_ratio:.3f}",
                 p.premature_fallbacks, p.duplicates_at_mab,
                 f"{p.mean_source_latency:.2f} s"]
                for p in points
            ],
            title="A1: ack-timeout sweep under periodic MAB hangs",
        )
    )
    by_timeout = {p.ack_timeout: p for p in points}
    # Everything is eventually delivered at every setting (email backup).
    assert all(p.delivered_ratio > 0.99 for p in points)
    # A 2 s timeout races the ~1.4 s ack RTT: premature fallbacks + dups.
    assert by_timeout[2.0].premature_fallbacks > 0
    assert by_timeout[2.0].duplicates_at_mab > 0
    # From 5 s up the timeout clears the healthy-path RTT: no waste.
    for timeout in (5.0, 15.0, 60.0):
        assert by_timeout[timeout].premature_fallbacks == 0
    # The cost of patience: stall time during hangs grows with the timeout.
    assert (
        by_timeout[60.0].mean_source_latency
        > by_timeout[5.0].mean_source_latency
    )
