"""E4 — Aladdin end-to-end: remote-control press to user IM popup (§5).

Paper: "From the time the button on the remote control was pushed to the
time an IM popped up on the user's screen, the end-to-end delivery took an
average of 11 seconds."
"""

from repro.experiments import run_aladdin_disarm
from repro.metrics.reports import format_table


def test_e4_aladdin_end_to_end(benchmark):
    result = benchmark.pedantic(
        run_aladdin_disarm, kwargs={"n_presses": 60, "seed": 0},
        rounds=1, iterations=1,
    )
    print()
    print(
        format_table(
            ["metric", "paper", "measured"],
            [
                ["remote press -> user IM, mean", "~11 s", f"{result.end_to_end.mean:.2f} s"],
                ["  of which: home chain (press -> alert)", "—",
                 f"{result.press_to_gateway_alert.mean:.2f} s"],
                ["  of which: SIMBA leg (alert -> user)", "—",
                 f"{result.simba_delivery.mean:.2f} s"],
                ["presses / receipts", "—", f"{result.presses} / {result.receipts}"],
            ],
            title="E4: Aladdin disarm-security scenario",
        )
    )
    assert result.receipts == result.presses
    # Shape: ~11 s — an order of magnitude above the bare SIMBA leg, driven
    # by the powerline + polling home chain.
    assert 7.0 < result.end_to_end.mean < 16.0
    assert result.press_to_gateway_alert.mean > result.simba_delivery.mean
