"""E9 — ablation of the four §4.2.1 high-availability techniques.

The paper argues each mechanism (pessimistic logging, the MDC watchdog,
self-stabilization, the monkey thread) is load-bearing: "the fault-tolerance
techniques for maintaining a highly available MyAlertBuddy have proven to be
most critical and very successful."  This bench disables one technique at a
time under the same one-month faultload, plus a targeted crash-after-ack
demonstration for pessimistic logging (whose window is too narrow for a
statistical month to exercise reliably).
"""

from repro.experiments import run_ha_ablation
from repro.experiments.fault_tolerance import run_logging_window
from repro.metrics.reports import format_table
from repro.sim.clock import MINUTE


def run_all():
    month = run_ha_ablation(seed=0, alert_period=10 * MINUTE)
    window = [
        run_logging_window(seed=0, n_alerts=20, logging_enabled=True),
        run_logging_window(seed=0, n_alerts=20, logging_enabled=False),
    ]
    return month, window


def test_e9_ha_ablation(benchmark):
    month, window = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_label = {r.label: r for r in month}
    rows = [
        [
            r.label,
            f"{r.delivery_ratio:.4f}",
            f"{r.im_path_ratio:.3f}",
            r.mdc_restarts,
            r.relogons,
            r.client_restarts,
        ]
        for r in month
    ]
    print()
    print(
        format_table(
            ["variant", "delivered", "via IM (timely)", "MDC restarts",
             "re-logons", "client restarts"],
            rows,
            title="E9a: one-month faultload, one HA technique removed at a time",
        )
    )
    logged, unlogged = window
    print()
    print(
        format_table(
            ["pessimistic logging", "acked by MAB", "acked-but-lost",
             "recovery replays"],
            [
                ["enabled", logged.acked_by_mab, logged.acked_but_lost,
                 logged.recovery_replays],
                ["DISABLED", unlogged.acked_by_mab, unlogged.acked_but_lost,
                 unlogged.recovery_replays],
            ],
            title="E9b: crash-after-ack window (20 forced crashes)",
        )
    )

    full = by_label["full-stack"]
    assert full.delivery_ratio > 0.95
    assert full.im_path_ratio > 0.95

    # No watchdog: the first unrecovered MAB crash is fatal — collapse.
    no_watchdog = by_label["no-watchdog"]
    assert no_watchdog.delivery_ratio < 0.5 * full.delivery_ratio

    # No monkey thread: blocking dialog boxes accumulate on screen and stall
    # both communication clients — delivery collapses too.
    no_monkey = by_label["no-monkey"]
    assert no_monkey.delivery_ratio < 0.5 * full.delivery_ratio

    # No self-stabilization: logouts and outage recoveries go unrepaired
    # between restarts.  Email fallback hides most of the *loss* (that is
    # the architecture working as designed) but timeliness degrades: far
    # fewer alerts arrive on the fast IM path, and nothing re-logs in.
    no_stab = by_label["no-stabilization"]
    assert no_stab.relogons == 0
    assert no_stab.im_path_ratio < full.im_path_ratio - 0.10

    # Pessimistic logging: without it, alerts whose ack the source received
    # are silently lost in crashes; with it, every one is replayed.
    assert logged.acked_but_lost == 0
    assert logged.recovery_replays > 0
    assert unlogged.acked_but_lost >= 3
    assert unlogged.recovery_replays == 0
