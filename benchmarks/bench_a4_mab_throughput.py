"""A4 — MAB saturation, and how the farm scales past it.

The paper runs MAB as a single sequential daemon on the user's desktop PC
(§4): log-before-ack, classify, route, and wait for the block outcome, one
alert at a time.  Per-user alert volume is tiny (§1: ~3.5 alerts/day), so
this is fine in production — but a library user should know where the
single-daemon design saturates.  The first sweep finds that ceiling
(~0.2 alerts/s with an acknowledging user in the loop); the second shows
the architectural answer: a :class:`~repro.core.farm.BuddyFarm` multiplies
daemons, and aggregate throughput grows near-linearly with tenant count —
50×+ past the single-daemon ceiling by 100 users.
"""

from repro.experiments import run_farm_throughput_sweep
from repro.metrics.reports import format_table
from repro.metrics.stats import summarize
from repro.sim.clock import MINUTE
from repro.workloads.arrivals import poisson_arrival_times
from repro.world import SimbaWorld, WorldConfig

#: The single-daemon service ceiling the first sweep demonstrates.
SINGLE_DAEMON_CEILING = 0.2

ON_TIME = 60.0


def run_throughput_sweep(
    rates=(0.05, 0.1, 0.2, 0.4), duration=30 * MINUTE, seed=0
):
    results = []
    for rate in rates:
        world = SimbaWorld(WorldConfig(seed=seed, email_loss=0.0, sms_loss=0.0))
        user = world.create_user("alice", present=True)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        deployment.subscribe("News", user, "normal", keywords=["News"])
        deployment.launch()
        source = world.create_source("portal")
        source.add_target(deployment.source_facing_book())
        deployment.config.classifier.accept_source("portal")

        times = poisson_arrival_times(
            world.rngs.stream("arrivals"), rate=rate, duration=duration
        )

        def emitter(env):
            for at in times:
                if at > env.now:
                    yield env.timeout(at - env.now)
                source.emit("News", f"h{env.now:.0f}", "b")

        world.env.process(emitter(world.env))
        # Generous drain time so queued alerts can finish.
        world.run(until=duration + 60 * MINUTE)
        received = [r for r in user.receipts if not r.duplicate]
        latencies = [r.latency for r in received]
        on_time = sum(1 for lat in latencies if lat <= ON_TIME)
        results.append(
            {
                "rate": rate,
                "offered": len(times),
                "delivered": len(received),
                "on_time_ratio": on_time / len(times) if times else 0.0,
                "latency": summarize(latencies),
            }
        )
    return results


def test_a4_mab_throughput_saturation(benchmark):
    results = benchmark.pedantic(run_throughput_sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["offered rate", "alerts", "delivered", "on-time(<60s)",
             "median latency", "p95 latency"],
            [
                [f"{r['rate']:.2f}/s", r["offered"], r["delivered"],
                 f"{r['on_time_ratio']:.3f}",
                 f"{r['latency'].median:.1f} s",
                 f"{r['latency'].p95:.1f} s"]
                for r in results
            ],
            title="A4: MAB single-daemon saturation sweep",
        )
    )
    by_rate = {r["rate"]: r for r in results}
    # Everything is eventually delivered at every rate (queueing, not loss).
    for r in results:
        assert r["delivered"] >= 0.97 * r["offered"]
    # Below capacity, alerts are timely.
    assert by_rate[0.05]["on_time_ratio"] > 0.95
    assert by_rate[0.1]["on_time_ratio"] > 0.9
    # Past capacity (~0.2/s service ceiling), timeliness collapses.
    assert by_rate[0.4]["on_time_ratio"] < 0.5
    assert (
        by_rate[0.4]["latency"].median > 5 * by_rate[0.05]["latency"].median
    )


def test_a4_rollup_is_single_pass_over_events():
    """Micro-assert: the farm rollup touches each receipt list exactly once.

    ``delivery_summary`` / ``iter_receipts`` are the A4 hot path — at farm
    scale the receipt population dominates memory, so the rollup must
    stream it (one pass, no intermediate Receipt list).  Counting
    iterations over instrumented receipt lists pins O(events) behaviour
    structurally instead of with a flaky timing threshold.
    """
    from repro.core.farm import FarmProfile
    from repro.core.user_endpoint import Receipt
    from repro.net.message import ChannelType

    class CountingList(list):
        def __init__(self, items):
            super().__init__(items)
            self.iterations = 0

        def __iter__(self):
            self.iterations += 1
            return super().__iter__()

    world = SimbaWorld(WorldConfig(seed=0))
    farm = world.create_farm(profile=FarmProfile())
    tenants = farm.add_users(5)
    for index, tenant in enumerate(tenants):
        tenant.user.receipts = CountingList(
            Receipt(
                alert_id=f"a{index}-{j}",
                channel=ChannelType.IM,
                at=float(10 + j),
                created_at=float(j),
                duplicate=(j % 3 == 0),
            )
            for j in range(20)
        )

    summary = farm.delivery_summary()
    for tenant in tenants:
        assert tenant.user.receipts.iterations == 1, (
            f"{tenant.name}: rollup iterated its receipts "
            f"{tenant.user.receipts.iterations} times (want exactly 1)"
        )
    # The streamed rollup computes the same numbers the list path did.
    unique = [r for t in tenants for r in t.user.receipts if not r.duplicate]
    assert summary["received"] == len(unique) == 5 * 13
    assert summary["latency"].mean == 10.0
    # And the list view is built from the same single-pass generator.
    assert farm.receipts(unique=True) == unique


def test_a4_farm_throughput_scales_linearly(benchmark):
    points = benchmark.pedantic(
        run_farm_throughput_sweep, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["users", "offered", "delivered", "aggregate rate",
             "vs 1-daemon ceiling", "on-time(<60s)", "median latency"],
            [
                [p.users, p.offered, p.delivered,
                 f"{p.aggregate_rate:.2f}/s",
                 f"{p.aggregate_rate / SINGLE_DAEMON_CEILING:.1f}x",
                 f"{p.on_time_ratio:.3f}",
                 f"{p.latency.median:.1f} s"]
                for p in points
            ],
            title="A4: BuddyFarm aggregate throughput sweep",
        )
    )
    by_users = {p.users: p for p in points}
    # Nothing is lost at any farm size, and everything stays timely.
    for p in points:
        assert p.delivered >= 0.97 * p.offered
        assert p.on_time_ratio > 0.95
    # The farm blows past the single-daemon ceiling: >= 50x by 100 users.
    assert by_users[100].aggregate_rate >= 50 * SINGLE_DAEMON_CEILING
    # Near-linear scaling: 10x the users => at least ~8x the throughput.
    assert (
        by_users[100].aggregate_rate >= 8 * by_users[10].aggregate_rate
    )
