"""E6 — the one-month fault-tolerance evaluation (§5).

Paper: "within a one-month period of time, there were five extended IM
downtimes lasting from 4 to 103 minutes.  In addition, there were nine
instances where MyAlertBuddy was logged out and simple re-logon attempts
worked.  In another nine instances, the hanging IM client had to be killed
and restarted in order to re-log in.  There were 36 restarts of MyAlertBuddy
by the MDC ...  The fault-tolerance mechanisms effectively recovered
MyAlertBuddy from all failures except three: one failure was caused by a
rare power outage in the office; another two were caused by previously
unknown dialog boxes."
"""

from repro.experiments import run_fault_month
from repro.metrics.reports import format_table


def test_e6_one_month_fault_log(benchmark):
    result = benchmark.pedantic(
        run_fault_month, kwargs={"seed": 0}, rounds=1, iterations=1
    )
    fault_triggered_restarts = result.mdc_restarts - result.rejuvenations
    print()
    print(
        format_table(
            ["recovery-log category", "paper", "measured"],
            [
                ["extended IM downtimes", "5 (4-103 min)",
                 f"{result.im_outages} "
                 f"({min(result.im_outage_minutes):.0f}-"
                 f"{max(result.im_outage_minutes):.0f} min)"],
                ["simple re-logon repairs", "9", result.relogons],
                ["IM client kill-and-restarts", "9", result.client_restarts],
                ["MDC restarts of MAB (fault-triggered)", "36",
                 fault_triggered_restarts],
                ["  + scheduled/rejuvenation restarts", "—",
                 result.rejuvenations],
                ["machine reboots by MDC", "0 mentioned", result.reboots],
                ["unrecovered failures", "3 (1 power, 2 dialogs)",
                 result.unrecovered],
                ["alerts emitted / received", "—",
                 f"{result.alerts_emitted} / {result.alerts_received}"],
                ["delivery ratio", "all but a handful",
                 f"{result.delivery_ratio:.4f}"],
                ["duplicates discarded by user", "timestamps allow discard",
                 result.duplicates_at_user],
                ["user IM latency (median)", "seconds",
                 f"{result.user_latency.median:.2f} s"],
            ],
            title="E6: one-month fault injection against the full HA stack",
        )
    )
    # Shape assertions mirroring the paper's log.
    assert result.im_outages == 5
    assert 4.0 <= min(result.im_outage_minutes)
    assert max(result.im_outage_minutes) <= 103.0
    assert result.client_restarts == 9
    # 36 injected MAB faults -> 36 fault-triggered MDC restarts (nightly
    # rejuvenations are orderly and counted separately).
    assert 30 <= fault_triggered_restarts <= 45
    assert result.unrecovered == 3
    # Dependability: the stack keeps delivering through the faulty month.
    assert result.delivery_ratio > 0.95
    assert result.user_latency.median < 10.0
