"""E8 — SIMBA delivery modes vs email-only and blanket redundancy (§2.3/§3.1).

Paper (qualitative): Aladdin's two-emails + two-SMS blanket redundancy gives
"no guarantee that any of the four messages can reach the user in time" for
critical alerts while "four messages per alert are irritating and
cumbersome" for routine ones; SIMBA's IM-with-ack + fallback modes achieve
timeliness without the spam.
"""

from repro.experiments import run_comparison
from repro.experiments.delivery_comparison import ON_TIME_DEADLINE
from repro.metrics.reports import format_table


def test_e8_strategy_comparison(benchmark):
    result = benchmark.pedantic(
        run_comparison, kwargs={"seed": 0, "n_alerts": 240},
        rounds=1, iterations=1,
    )
    rows = []
    for metrics in result.strategies:
        rows.append(
            [
                metrics.name,
                f"{metrics.delivery_ratio:.3f}",
                f"{metrics.on_time_ratio:.3f}",
                f"{metrics.critical_on_time_ratio:.3f}",
                f"{metrics.messages_per_alert:.2f}",
                f"{metrics.latency.median:.1f} s",
            ]
        )
    print()
    print(
        format_table(
            [
                "strategy",
                "delivered",
                f"on-time(<{ON_TIME_DEADLINE:.0f}s)",
                "critical on-time",
                "msgs/alert",
                "median latency",
            ],
            rows,
            title="E8: delivery strategies under identical workload + faults",
        )
    )
    email = result.by_name("email-only")
    redundant = result.by_name("redundant")
    simba = result.by_name("simba")

    # Who wins, by roughly what factor:
    # 1. SIMBA beats both baselines on critical timeliness...
    assert simba.critical_on_time_ratio > redundant.critical_on_time_ratio
    assert simba.critical_on_time_ratio > 2.5 * email.critical_on_time_ratio
    # 2. ...at a fraction of the message volume (irritation factor ~4x).
    assert redundant.messages_per_alert > 3.0 * simba.messages_per_alert
    assert simba.messages_per_alert < 1.5
    # 3. Blanket redundancy still cannot guarantee timeliness (§2.3).
    assert redundant.critical_on_time_ratio < 0.8
    # 4. Email-only is the slowest (median, factor >= 10x vs SIMBA).
    assert email.latency.median > 10 * simba.latency.median
    # 5. Everyone eventually delivers most alerts (email loss is small).
    for metrics in result.strategies:
        assert metrics.delivery_ratio > 0.9
