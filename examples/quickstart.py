"""Quickstart: one user, one MyAlertBuddy, one alert source.

Builds the smallest complete SIMBA deployment, subscribes Alice's personal
"Investment" category to the portal's "Stocks" keyword, sends one alert and
shows it arriving on her IM within a few seconds — acknowledged end to end.

Run:  python examples/quickstart.py
"""

from repro import SimbaWorld


def main() -> None:
    world = SimbaWorld(seed=7)

    # The human: IM identity, phone, mailbox.  Present at her machine.
    alice = world.create_user("alice", present=True)

    # Her always-on personal alert router.
    buddy = world.create_buddy(alice)
    buddy.register_user_endpoint(alice)  # addresses + standard modes
    buddy.subscribe("Investment", alice, "normal", keywords=["Stocks"])
    buddy.launch()

    # An alert service.  It only ever learns the buddy's addresses — never
    # Alice's (that's the privacy point of MyAlertBuddy).
    portal = world.create_source("portal")
    portal.add_target(buddy.source_facing_book())
    buddy.config.classifier.accept_source("portal")

    alert, _deliveries = portal.emit(
        "Stocks", "MSFT up 3%", "Microsoft stock rose 3% on earnings."
    )
    world.run(until=60.0)

    print("=== SIMBA quickstart ===")
    print(f"alert emitted by portal at t={alert.created_at:.2f}s "
          f"(id {alert.alert_id})")
    (outcome,) = portal.outcomes
    print(f"source view : delivered={outcome.delivered} "
          f"via block {outcome.delivered_via} "
          f"(ack after {outcome.blocks[0].elapsed:.2f}s)")
    for receipt in alice.receipts:
        print(f"alice view  : received on {receipt.channel.value} "
              f"after {receipt.latency:.2f}s (duplicate={receipt.duplicate})")
    print(f"buddy journal: "
          f"{[(e.kind, round(e.at, 2)) for e in buddy.journal.events]}")

    # The full hop-by-hop journey of the alert:
    from repro.metrics import render_trace, trace_alert

    print("\n--- alert trace ---")
    print(render_trace(
        trace_alert(alert.alert_id, source=portal, deployment=buddy,
                    user=alice)
    ))
    assert alice.receipts, "the alert should have arrived"


if __name__ == "__main__":
    main()
