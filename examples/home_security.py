"""The Aladdin home-networking scenario of §5, plus §2.3's sensors.

A parent subscribes to home alerts through MyAlertBuddy with
sub-categorized urgency (§4.2): "Sensor ON" is an emergency (critical
delivery mode), "Sensor OFF" and security-state changes are routine.

The script then replays three stories:

1. The kid comes home and disarms the security system with the RF remote
   (the paper's 11-second end-to-end chain).
2. The basement floods: critical "Basement Water Sensor ON" alert.
3. The garage-door sensor's battery dies: its soft-state variable misses
   refreshes and times out -> "Sensor Broken" alert.

Run:  python examples/home_security.py
"""

from repro import SimbaWorld
from repro.aladdin import AladdinHome
from repro.sim import MINUTE


def main() -> None:
    world = SimbaWorld(seed=3)
    parent = world.create_user("parent", present=True)
    buddy = world.create_buddy(parent)
    buddy.register_user_endpoint(parent)
    # Sub-categorization: same source, different urgency per keyword (§4.2).
    buddy.subscribe("Home Emergency", parent, "critical",
                    keywords=["Sensor ON"])
    buddy.subscribe("Home Routine", parent, "normal",
                    keywords=["Sensor OFF", "Security Armed",
                              "Security Disarmed", "Sensor Broken"])
    buddy.launch()
    buddy.config.classifier.accept_source("aladdin")

    home = AladdinHome(world.env, world.rngs,
                       world.create_source_endpoint("aladdin"))
    home.gateway.add_target(buddy.source_facing_book())
    water = home.add_sensor("Basement Water", critical=True,
                            refresh_period=30.0)
    garage = home.add_sensor("Garage Door", critical=True,
                             refresh_period=30.0, max_missed=2)

    print("=== Aladdin home security through SIMBA ===")

    def story(env):
        yield env.timeout(60.0)
        print(f"[t={env.now:7.1f}s] kid presses DISARM on the RF remote")
        pressed = env.now
        home.disarm_via_remote()
        yield env.timeout(2 * MINUTE)
        receipt = parent.receipts[-1]
        print(f"[t={receipt.at:7.1f}s] parent's IM pops: security disarmed "
              f"(end-to-end {receipt.at - pressed:.1f}s; paper: ~11s)")

        yield env.timeout(5 * MINUTE)
        print(f"[t={env.now:7.1f}s] water reaches the basement sensor")
        tripped = env.now
        water.trip()
        yield env.timeout(2 * MINUTE)
        receipt = parent.receipts[-1]
        print(f"[t={receipt.at:7.1f}s] CRITICAL alert on "
              f"{receipt.channel.value}: basement water ON "
              f"({receipt.at - tripped:.1f}s after the sensor fired)")

        yield env.timeout(5 * MINUTE)
        print(f"[t={env.now:7.1f}s] garage sensor battery dies "
              "(refreshes stop)")
        garage.drain_battery()

    world.env.process(story(world.env))
    world.run(until=40 * MINUTE)

    print("\nalert trail at the gateway:")
    for alert in home.gateway.emitted:
        print(f"  t={alert.created_at:7.1f}s  [{alert.keyword:18s}] "
              f"{alert.subject}")
    print("\nparent's receipts:")
    for receipt in parent.receipts:
        print(f"  t={receipt.at:7.1f}s  via {receipt.channel.value:3s} "
              f"latency {receipt.latency:5.1f}s")
    keywords = [a.keyword for a in home.gateway.emitted]
    assert "Security Disarmed" in keywords
    assert "Sensor ON" in keywords
    assert "Sensor Broken" in keywords
    assert len(parent.receipts) >= 3


if __name__ == "__main__":
    main()
