"""The SIMBA Desktop Assistant scenario (§2.5).

Alice's desktop assistant watches her mail client and calendar.  While she
is at her desk, nothing is forwarded.  When she has been idle past the
threshold and a high-importance email or reminder arrives — or lingers
unread — the assistant sends it through her MyAlertBuddy, which routes her
"Work Urgent" category to the *critical* delivery mode: IM first, and when
she is away from every machine, her phone (the paper: "since the user is
likely to be away from any machine, all alerts are generated as SMS").

Run:  python examples/desktop_assistant.py
"""

from repro import SimbaWorld
from repro.sim import MINUTE
from repro.sources.desktop import DesktopAssistant


def main() -> None:
    world = SimbaWorld(seed=13)
    alice = world.create_user("alice", present=True)
    buddy = world.create_buddy(alice)
    buddy.register_user_endpoint(alice)
    buddy.subscribe(
        "Work Urgent", alice, "critical",
        keywords=["Important email", "Reminder"],
    )
    buddy.launch()
    buddy.config.classifier.accept_source("assistant")

    assistant = DesktopAssistant(
        world.env, "assistant", world.create_source_endpoint("assistant"),
        idle_threshold=10 * MINUTE,
    )
    assistant.add_target(buddy.source_facing_book())
    assistant.watch_mailbox(world.email, "alice-desktop@mail",
                            interval=MINUTE)

    print("=== SIMBA Desktop Assistant ===")

    def day(env):
        # 09:00-ish: Alice is typing away; important mail is NOT forwarded.
        assistant.record_activity()
        world.email.send("boss@mail", "alice-desktop@mail",
                         "budget review today", "...", importance="high")
        yield env.timeout(2 * MINUTE)
        # The mail client's new-mail hook fires; she is at the desk, so the
        # assistant suppresses the forward (she can see the popup herself).
        assistant.email_arrived("budget review today", importance="high")
        print(f"[t={env.now/60:5.1f}m] high-importance mail arrived while "
              f"Alice was typing -> suppressed "
              f"({len(assistant.suppressed)} suppressed)")

        # She walks to a meeting and goes IM-offline too.
        yield env.timeout(MINUTE)
        alice.set_present(False)
        print(f"[t={env.now/60:5.1f}m] Alice leaves her desk (IM offline)")

        # 15 minutes later the assistant notices: idle > threshold AND the
        # high-importance mail is still unread -> forward through SIMBA.
        yield env.timeout(20 * MINUTE)
        reminder = assistant.reminder_popped("1:1 with manager in 15 min")
        print(f"[t={env.now/60:5.1f}m] calendar reminder popped while away"
              f" -> forwarded: {reminder is not None}")
        yield env.timeout(10 * MINUTE)

    world.env.process(day(world.env))
    world.run(until=90 * MINUTE)

    print("\nassistant emissions:")
    for alert in assistant.emitted:
        print(f"  t={alert.created_at/60:5.1f}m  [{alert.keyword}] "
              f"{alert.subject}")
    print("\nalice's devices received:")
    for receipt in alice.receipts:
        print(f"  t={receipt.at/60:5.1f}m  via {receipt.channel.value:3s} "
              f"(latency {receipt.latency:.1f}s, duplicate={receipt.duplicate})")

    # While away, the critical mode's IM block cannot confirm, so block 2
    # (SMS + email) carried the alerts to her phone.
    channels = {r.channel.value for r in alice.receipts}
    assert "SMS" in channels, "away-from-desk alerts must reach the phone"
    assert len(assistant.emitted) == 2  # lingering mail + reminder
    assert len(assistant.suppressed) == 1


if __name__ == "__main__":
    main()
