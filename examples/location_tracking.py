"""The WISH user-location scenario of §2.4/§5.

Victor carries a wireless laptop through an office building instrumented
with three access points.  His manager subscribes to location alerts —
but only after Victor explicitly authorizes the tracking (WISH leaves
"the control of location information dissemination solely with the user").

Run:  python examples/location_tracking.py
"""

from repro import SimbaWorld
from repro.aladdin.sss import SoftStateStore
from repro.sim import MINUTE
from repro.wish import (
    FloorPlan,
    LocationTrigger,
    PathLossModel,
    Region,
    WISHAlertService,
    WISHClient,
    WISHServer,
)
from repro.wish.alerts import NotAuthorized


def main() -> None:
    world = SimbaWorld(seed=5)
    boss = world.create_user("boss", present=True)
    buddy = world.create_buddy(boss)
    buddy.register_user_endpoint(boss)
    buddy.subscribe(
        "Whereabouts", boss, "normal",
        keywords=["Location move_region", "Location enter_building",
                  "Location leave_building"],
    )
    buddy.launch()
    buddy.config.classifier.accept_source("wish")

    plan = FloorPlan("msr-building")
    plan.add_region(Region("west-wing", 0, 0, 20, 20))
    plan.add_region(Region("east-wing", 20, 0, 40, 20))
    plan.add_ap("ap-west", (10, 10))
    plan.add_ap("ap-east", (30, 10))
    plan.add_ap("ap-mid", (20, 5))
    radio = PathLossModel(shadowing_sigma_db=2.0)
    store = SoftStateStore(world.env, "wish-sss")
    server = WISHServer(world.env, plan, radio, store,
                        rng=world.rngs.stream("wish-server"))
    victor = WISHClient(world.env, "victor", plan, radio, server,
                        rng=world.rngs.stream("wish-client"),
                        position=(5.0, 5.0))
    service = WISHAlertService(
        world.env, "wish", world.create_source_endpoint("wish"), server
    )

    print("=== WISH location tracking through SIMBA ===")

    # Privacy first: tracking without authorization is refused outright.
    try:
        service.request_tracking("boss", "victor",
                                 {LocationTrigger.MOVE_REGION},
                                 buddy.source_facing_book())
    except NotAuthorized as exc:
        print(f"[privacy] tracking request refused: {exc}")

    service.authorize("victor", "boss")
    request = service.request_tracking(
        "boss", "victor",
        {LocationTrigger.MOVE_REGION, LocationTrigger.LEAVE_BUILDING,
         LocationTrigger.ENTER_BUILDING},
        buddy.source_facing_book(),
    )
    print("[privacy] victor authorized boss; tracking request accepted")

    victor.start()
    # Victor's day: desk -> east-wing meeting -> lunch outside -> back.
    victor.walk([
        (5 * MINUTE, (30.0, 10.0)),   # meeting in the east wing
        (15 * MINUTE, None),          # leaves the building for lunch
        (25 * MINUTE, (6.0, 6.0)),    # back at his west-wing desk
    ])
    world.run(until=40 * MINUTE)

    print("\nlocation estimates (last of each region stretch):")
    seen = None
    for estimate in server.estimates:
        if estimate.region != seen:
            seen = estimate.region
            position = (
                f"({estimate.position[0]:.1f}, {estimate.position[1]:.1f})"
                if estimate.position else "—"
            )
            print(f"  t={estimate.at:7.1f}s  {estimate.region:10s} "
                  f"pos={position}  confidence={estimate.confidence:.0f}%")

    print("\nboss's alerts:")
    for receipt in boss.receipts:
        print(f"  t={receipt.at:7.1f}s via {receipt.channel.value} "
              f"(alert-to-IM latency {receipt.latency:.1f}s)")
    print(f"\ntracking request fired {request.alerts_sent} alerts "
          "(move, leave, enter)")
    assert request.alerts_sent == 3
    assert len(boss.receipts) == 3


if __name__ == "__main__":
    main()
