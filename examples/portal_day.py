"""One day of a commercial portal, scaled down and replayed end to end.

The paper's §1 workload: ~225k people receiving ~778k alerts/day (≈3.46
alerts per recipient).  This example scales the population to three real
users with MyAlertBuddies (preserving the per-user rate times a factor so
something actually happens), replays a diurnally-shaped day through the full
stack, and prints the hour-by-hour traffic plus each user's outcome.

Run:  python examples/portal_day.py
"""

from collections import Counter

from repro import SimbaWorld
from repro.sim import DAY, HOUR
from repro.workloads import PortalLogGenerator

USERS = ("alice", "bob", "carol")
# 3 users x ~20 alerts each: a busy (x6 paper-rate) day so the diurnal
# shape is visible at small scale.
ALERTS_PER_DAY = 60


def main() -> None:
    world = SimbaWorld(seed=17)

    deployments = {}
    endpoints = {}
    source = world.create_source("portal")
    generator = PortalLogGenerator(
        world.rngs.stream("portal-log"),
        n_users=len(USERS),
        alerts_per_day=ALERTS_PER_DAY,
    )
    for index, name in enumerate(USERS):
        user = world.create_user(name, present=True)
        deployment = world.create_buddy(user)
        deployment.register_user_endpoint(user)
        for category in generator.categories:
            deployment.subscribe(category, user, "normal",
                                 keywords=[category])
        deployment.config.classifier.accept_source("portal")
        deployment.launch()
        deployments[index] = deployment
        endpoints[index] = user

    records = generator.generate_day(0)

    def replay(env):
        for record in records:
            if record.at > env.now:
                yield env.timeout(record.at - env.now)
            source.emit_to(
                deployments[record.user_id].source_facing_book(),
                record.category,
                f"{record.category} update",
                f"for user{record.user_id}",
            )

    world.env.process(replay(world.env))
    world.run(until=DAY + HOUR)

    print("=== one portal day, replayed through SIMBA ===")
    print(f"log records: {len(records)} alerts for {len(USERS)} users "
          f"({len(records)/len(USERS):.1f} per user)")

    by_hour = Counter(int(r.at // HOUR) % 24 for r in records)
    peak = max(by_hour.values()) if by_hour else 1
    print("\nhour-by-hour traffic (diurnal shape):")
    for hour in range(24):
        count = by_hour.get(hour, 0)
        bar = "#" * round(30 * count / peak)
        print(f"  {hour:02d}:00 {count:3d} {bar}")

    print("\nper-user outcome:")
    for index, name in enumerate(USERS):
        user = endpoints[index]
        received = user.unique_alerts_received()
        latencies = [r.latency for r in user.receipts if not r.duplicate]
        mean = sum(latencies) / len(latencies) if latencies else float("nan")
        print(f"  {name:<6s} received {len(received):3d} unique alerts, "
              f"mean latency {mean:5.1f}s, "
              f"duplicates discarded {user.duplicates_discarded()}")

    total_received = sum(
        len(endpoints[i].unique_alerts_received()) for i in range(len(USERS))
    )
    print(f"\ndelivered {total_received}/{len(records)} "
          f"({total_received/len(records):.1%})")
    assert total_received >= 0.95 * len(records)


if __name__ == "__main__":
    main()
