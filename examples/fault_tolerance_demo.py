"""MyAlertBuddy surviving a bad afternoon (§4.2.1 / §5).

A storm of failures hits the deployment while a portal keeps sending
alerts: a forced logout, a hung IM client, a MAB crash *after* an alert was
acknowledged but before it was routed, a blocking dialog box with an
unknown caption, a hung MAB, and finally a short IM service outage.  The
script prints the recovery journal so you can watch each §4.2.1 mechanism
do its job — and checks nothing acknowledged was ever lost.

Run:  python examples/fault_tolerance_demo.py
"""

from repro import LatencyModel, SimbaWorld, WorldConfig
from repro.sim import MINUTE

IM_FIXED = LatencyModel(median=0.4, sigma=0.0, low=0.0, high=10.0)


def main() -> None:
    world = SimbaWorld(
        WorldConfig(seed=9, im_latency=IM_FIXED, email_loss=0.0, sms_loss=0.0)
    )
    alice = world.create_user("alice", present=True)
    buddy = world.create_buddy(alice)
    buddy.register_user_endpoint(alice)
    buddy.subscribe("News", alice, "normal", keywords=["News"])
    mdc = world.start_mdc(buddy, check_interval=60.0)

    portal = world.create_source("portal")
    portal.add_target(buddy.source_facing_book())
    buddy.config.classifier.accept_source("portal")

    def steady_alerts(env):
        index = 0
        while True:
            portal.emit("News", f"headline {index}", "body")
            index += 1
            yield env.timeout(2 * MINUTE)

    def mayhem(env):
        yield env.timeout(3 * MINUTE)
        print(f"[t={env.now:6.0f}s] FAULT: IM server force-logs MAB out")
        world.im.force_logout(buddy.im_address)

        yield env.timeout(5 * MINUTE)
        print(f"[t={env.now:6.0f}s] FAULT: the GUI IM client hangs")
        buddy.endpoint.im_client.hang()

        yield env.timeout(5 * MINUTE)
        print(f"[t={env.now:6.0f}s] FAULT: MAB crashes 1.5s after the next "
              "alert is acked (pessimistic-log window)")
        portal.emit("News", "headline-during-crash", "body")
        yield env.timeout(1.5)
        buddy.current.crash()

        yield env.timeout(5 * MINUTE)
        print(f"[t={env.now:6.0f}s] FAULT: unknown modal dialog blocks the "
              "screen")
        world.host.screen.pop_dialog("Setup wizard has stopped", ("Close",),
                                     owner=None)
        yield env.timeout(5 * MINUTE)
        print(f"[t={env.now:6.0f}s] FIX  : operator registers the "
              "caption/button pair (dialog-box handling API)")
        buddy.endpoint.im_manager.register_dialog_rule(
            "Setup wizard has stopped", "Close")

        yield env.timeout(5 * MINUTE)
        print(f"[t={env.now:6.0f}s] FAULT: MAB hangs (stops answering "
              "AreYouWorking)")
        buddy.current.hang()

        yield env.timeout(8 * MINUTE)
        print(f"[t={env.now:6.0f}s] FAULT: 4-minute IM service outage")
        world.im.outage(4 * MINUTE)

    world.env.process(steady_alerts(world.env))
    world.env.process(mayhem(world.env))
    world.run(until=50 * MINUTE)

    print("\n=== recovery journal ===")
    for event in buddy.journal.events:
        if event.kind in ("incarnation_start", "routed"):
            continue
        print(f"  t={event.at:7.1f}s  {event.kind:18s} {event.detail[:60]}")

    stats = buddy.endpoint.im_manager.stats
    print("\n=== recovery actions ===")
    print(f"  sanity checks run      : {stats.sanity_checks}")
    print(f"  simple re-logons       : {stats.relogons}")
    print(f"  client kill-restarts   : {stats.restarts}")
    print(f"  MDC restarts of MAB    : {len(mdc.restarts)} "
          f"({[r.reason.value for r in mdc.restarts]})")
    print(f"  monkey-thread clicks   : "
          f"{len(buddy.endpoint.im_manager.monkey.clicks)}")
    print(f"  log entries replayed   : "
          f"{buddy.journal.count('recovery_replay')}")

    emitted = len(portal.emitted)
    received = len(alice.unique_alerts_received())
    print(f"\n=== outcome ===\n  alerts emitted {emitted}, unique received "
          f"{received}, duplicates discarded {alice.duplicates_discarded()}")
    acked = {o.correlation for o in portal.outcomes
             if o.delivered and o.delivered_via == 0}
    lost_acked = acked - alice.unique_alerts_received()
    print(f"  acknowledged-but-lost  : {len(lost_acked)} "
          "(pessimistic logging guarantee)")
    assert not lost_acked
    assert buddy.journal.count("recovery_replay") >= 1
    assert received >= emitted - 3  # a couple may ride the slow email tail


if __name__ == "__main__":
    main()
