"""The §3.3 dynamic-customization scenario, end to end.

Alice subscribes to three services — Yahoo! stock quotes, Wall Street
Journal financial news and CBS MarketWatch columns — and aggregates all of
them into one personal "Investment" category.  The script then walks the
paper's three §3.3 situations:

1. She needs timely investment decisions → switch the whole category from
   digest email to IM, with ONE change at MyAlertBuddy (not three services).
2. Her cell phone dies while travelling → disable the SMS address; blocks
   containing SMS actions automatically fall back.
3. She wants no distractions at night → a delivery window on the category.

Run:  python examples/investment_alerts.py
"""

from repro import SimbaWorld, TimeWindow
from repro.sim import HOUR, MINUTE


def emit_round(sources, tag):
    for name, source in sources.items():
        keyword = {"yahoo": "Stocks", "wsj": "Financial news",
                   "marketwatch": "Earnings reports"}[name]
        source.emit(keyword, f"{keyword}: {tag}", f"{tag} from {name}")


def show(alice, since, label):
    fresh = [r for r in alice.receipts if r.at >= since]
    print(f"  -> {label}: "
          + (", ".join(f"{r.channel.value} after {r.latency:.1f}s"
                       for r in fresh) or "(nothing delivered)"))
    return len(fresh)


def main() -> None:
    world = SimbaWorld(seed=11)
    alice = world.create_user("alice", present=True)
    buddy = world.create_buddy(alice)
    buddy.register_user_endpoint(alice)

    # Aggregation: three services' native keywords -> one personal category.
    buddy.subscribe(
        "Investment", alice, "digest",
        keywords=["Stocks", "Financial news", "Earnings reports"],
    )
    sources = {name: world.create_source(name)
               for name in ("yahoo", "wsj", "marketwatch")}
    for source in sources.values():
        source.add_target(buddy.source_facing_book())
        buddy.config.classifier.accept_source(source.name)
    buddy.launch()

    print("=== Investment alerts: dynamic customization at MyAlertBuddy ===")

    print("\n[1] Default: 'Investment' rides the digest mode (email only).")
    mark = world.env.now
    emit_round(sources, "morning digest")
    world.run(until=world.env.now + 30 * MINUTE)
    show(alice, mark, "digest mode")

    print("\n[2] Earnings day: ONE change switches all three services to IM.")
    subs = buddy.config.subscriptions
    subs.unsubscribe("Investment", "alice")
    subs.subscribe("Investment", "alice", "normal")  # IM-ack, email backup
    mark = world.env.now
    emit_round(sources, "earnings surprise")
    world.run(until=world.env.now + 5 * MINUTE)
    show(alice, mark, "after mode switch")

    print("\n[3] Phone battery dies abroad: disable the SMS address.")
    subs.unsubscribe("Investment", "alice")
    subs.subscribe("Investment", "alice", "critical")  # IM -> SMS+email
    alice.set_present(False)  # she is on a plane: no IM
    subs.address_book("alice").set_enabled("SMS", False)
    mark = world.env.now
    emit_round(sources, "market crash")
    world.run(until=world.env.now + 30 * MINUTE)
    show(alice, mark, "SMS disabled, away from IM (email fallback)")
    assert world.sms.stats.submitted == 0, "no SMS must have been attempted"

    print("\n[4] Quiet hours: Investment alerts only 09:00-17:00.")
    alice.set_present(True)
    buddy.config.filters.set_delivery_window(
        "Investment", TimeWindow(9 * HOUR, 17 * HOUR)
    )
    mark = world.env.now  # the sim clock is still in the small hours
    emit_round(sources, "3am rumor")
    world.run(until=world.env.now + 5 * MINUTE)
    count = show(alice, mark, "inside quiet hours")
    assert count == 0
    filtered = buddy.journal.count("filtered")
    print(f"  ({filtered} alerts suppressed by the filter, "
          "still subscribed for later)")

    print("\nAll §3.3 scenarios executed with changes at MAB only — the "
          "three services were never touched.")


if __name__ == "__main__":
    main()
